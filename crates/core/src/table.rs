//! The linear-probing counter table of §2.3.3, generic over the key type.
//!
//! Keys and values live in two parallel arrays whose length `L` is a power
//! of two (so index arithmetic is a mask). A third parallel array of 2-byte
//! *states* holds, for every occupied cell, the probe distance of the stored
//! key from its preferred cell plus one; state 0 marks an empty cell. The
//! paper's numerical analysis shows 2 bytes suffice for any realistic table
//! (for k ≤ 2³² and L = 4k/3 the probability a state ever exceeds 2¹⁴ is
//! below 10⁻²⁵⁰). With `u64` keys that is 18 bytes per slot and
//! `18·(4/3)·k = 24k` bytes per sketch at the 3/4 design load factor.
//!
//! The table is generic over [`SketchKey`]:
//! `LpTable<u64>` is bit-for-bit the paper's layout (dense `Vec<u64>` keys,
//! inline SplitMix64 hashing, no `Option` overhead — vacancy lives in the
//! state array, so empty slots just hold `K::default()`), while
//! `LpTable<String>` or any other key type gets the same probing, batching,
//! and purge machinery with by-value key storage.
//!
//! The operation that distinguishes this table from a stock hash map is the
//! purge: *decrement every counter by `c*` and delete the non-positive ones,
//! in place, in one pass* ([`LpTable::purge_decrement`]). The pass fuses
//! decrement, deletion, and run compaction: each survivor's home cell is
//! recovered from its probe-distance state and it slides to the first free
//! slot of its run — the canonical FCFS layout, with no tombstones and no
//! hashing. (Incremental backward-shift deletion is also available via
//! [`LpTable::retain_positive`]; it is the better tool only when few
//! counters die, and it degrades to O(cluster²) per run when a purge kills
//! the large fractions the median policies target.)
//!
//! The batched entry points ([`LpTable::adjust_or_insert_batch`] and the
//! zero-copy [`LpTable::adjust_or_insert_batch_weighted`]) precompute probe
//! homes a chunk at a time and software-prefetch upcoming slots, hiding
//! DRAM latency once the table outgrows cache; they apply updates in order
//! and are state-identical to scalar upsert loops.
//!
//! The table is deliberately *not* a general-purpose map: it has exactly the
//! operations the sketch needs, and its capacity discipline (the sketch
//! never fills it past 3/4) is what keeps probe sequences short.

use crate::engine::SketchKey;
use crate::rng::Xoshiro256StarStar;

/// Items per internal batch chunk: homes for a whole chunk are computed
/// up front so the key hashing vectorizes and the slot accesses can be
/// prefetched before the probe loop touches them. 128 keeps the chunk's
/// home array and pair slice inside L1 while giving the prefetcher a
/// long enough runway that a full [`PREFETCH_AHEAD`] window fits well
/// inside one chunk.
pub(crate) const BATCH_CHUNK: usize = 128;

/// How many slots ahead of the cursor the batch paths prefetch. Far
/// enough that a line arrives from DRAM before the sweep reaches it
/// (~16 upserts of latency covers a DRAM round-trip at the measured
/// per-upsert cost), near enough not to evict still-needed lines.
const PREFETCH_AHEAD: usize = 16;

/// Best-effort prefetch of `slice[index]` into L1. Bounds are checked
/// before forming the address; the instruction itself has no
/// architectural effect, so a wasted hint is the only failure mode.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[inline(always)]
pub(crate) fn prefetch_read<T>(slice: &[T], index: usize) {
    if index < slice.len() {
        // SAFETY: `index` is in bounds, so `add(index)` stays inside the
        // allocation; PREFETCHT0 performs no memory access that could
        // fault or be observed by safe code.
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                slice.as_ptr().add(index) as *const i8,
            );
        }
    }
}

/// No-op fallback on architectures without a stable prefetch intrinsic.
#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
pub(crate) fn prefetch_read<T>(_slice: &[T], _index: usize) {}

/// Lanes processed together by the multi-lane ingest kernel: this many
/// independent updates probe as one interleaved state machine, so up to
/// this many cache misses are in flight at once instead of one.
const KERNEL_LANES: usize = 8;

/// Contiguous slots examined per wide probe step on `u64` keys.
const SCAN_WIDTH: usize = 4;

/// True when the ingest kernel should use the AVX2 wide slot scan.
/// Runtime-detected once per process (the CRC-32C SSE4.2 pattern from
/// the persistence layer), and overridable for CI with
/// `STREAMFREQ_FORCE_PORTABLE_SCAN=1`, which pins the explicitly
/// unrolled portable path so both scan implementations stay exercised.
#[cfg(target_arch = "x86_64")]
fn wide_scan_simd_enabled() -> bool {
    use std::sync::OnceLock;
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        let forced_portable = std::env::var_os("STREAMFREQ_FORCE_PORTABLE_SCAN")
            .map(|v| v.to_string_lossy() != "0")
            .unwrap_or(false);
        !forced_portable && std::arch::is_x86_feature_detected!("avx2")
    })
}

#[cfg(not(target_arch = "x86_64"))]
fn wide_scan_simd_enabled() -> bool {
    false
}

/// Portable wide probe step: examines the `SCAN_WIDTH` slots starting at
/// `i` (caller guarantees `i + SCAN_WIDTH <= len`, i.e. no ring wrap)
/// with the exact per-slot order of the scalar probe loop — state first
/// (an empty slot terminates the probe even when its parked default key
/// equals the needle), then the key compare. Returns `Some((offset,
/// matched))` for the first terminating slot, `None` to advance the
/// window. Explicitly unrolled so the four slot checks pipeline.
#[inline(always)]
fn scan4_portable(keys: &[u64], states: &[u16], i: usize, needle: u64) -> Option<(usize, bool)> {
    let s = &states[i..i + SCAN_WIDTH];
    let k = &keys[i..i + SCAN_WIDTH];
    if s[0] == 0 {
        return Some((0, false));
    }
    if k[0] == needle {
        return Some((0, true));
    }
    if s[1] == 0 {
        return Some((1, false));
    }
    if k[1] == needle {
        return Some((1, true));
    }
    if s[2] == 0 {
        return Some((2, false));
    }
    if k[2] == needle {
        return Some((2, true));
    }
    if s[3] == 0 {
        return Some((3, false));
    }
    if k[3] == needle {
        return Some((3, true));
    }
    None
}

/// AVX2 wide probe step: one 256-bit compare covers all four key slots
/// and one 64-bit SSE2 compare covers the four 2-byte states. Must agree
/// with [`scan4_portable`] on every input — the cross-check tests and the
/// CI portable-forced job pin that. This is the only `unsafe` the ingest
/// kernel introduces.
///
/// # Safety
/// The caller must have verified AVX2 support at runtime and guarantee
/// `i + SCAN_WIDTH <= keys.len() == states.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn scan4_avx2(keys: &[u64], states: &[u16], i: usize, needle: u64) -> Option<(usize, bool)> {
    use core::arch::x86_64::*;
    debug_assert!(i + SCAN_WIDTH <= keys.len() && i + SCAN_WIDTH <= states.len());
    // SAFETY: `i + SCAN_WIDTH` is in bounds (caller contract), so both
    // unaligned loads stay inside their allocations.
    let kv = unsafe { _mm256_loadu_si256(keys.as_ptr().add(i) as *const __m256i) };
    let eq = _mm256_cmpeq_epi64(kv, _mm256_set1_epi64x(needle as i64));
    // One sign bit per 64-bit lane: bit t set ⇔ keys[i+t] == needle.
    let match_mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32;
    // SAFETY: same caller contract covers the 8-byte state load.
    let sv = unsafe { _mm_loadl_epi64(states.as_ptr().add(i) as *const __m128i) };
    let zeq = _mm_cmpeq_epi16(sv, _mm_setzero_si128());
    // Two bits per 16-bit lane; keep one per lane: bit t ⇔ state == 0.
    let zbytes = (_mm_movemask_epi8(zeq) as u32) & 0xFF;
    let empty_mask = (zbytes & 0b0101_0101).compress_lane_bits();
    if (match_mask | empty_mask) == 0 {
        return None;
    }
    let first_match = match_mask.trailing_zeros();
    let first_empty = empty_mask.trailing_zeros();
    // At equal offsets the empty slot wins: the scalar probe checks the
    // state before the key, so a default-keyed vacant slot never counts
    // as a match.
    if first_empty <= first_match {
        Some((first_empty as usize, false))
    } else {
        Some((first_match as usize, true))
    }
}

/// Helper for [`scan4_avx2`]: folds the even bits `b0 b2 b4 b6` of a
/// byte-pair mask down to contiguous low bits `0..4`.
trait CompressLaneBits {
    fn compress_lane_bits(self) -> u32;
}

impl CompressLaneBits for u32 {
    #[inline(always)]
    fn compress_lane_bits(self) -> u32 {
        (self & 1) | ((self >> 1) & 2) | ((self >> 2) & 4) | ((self >> 3) & 8)
    }
}

/// One lane's read-only probe outcome inside the multi-lane kernel.
#[derive(Clone, Copy, Default)]
struct LaneProbe {
    /// Terminating slot: the first empty slot on the probe path, or the
    /// slot holding the key.
    slot: usize,
    /// Probe distance from the lane's home cell to `slot`.
    dist: usize,
    /// True if `slot` holds the key (update), false if it is the empty
    /// insert target.
    matched: bool,
}

/// Read-only interleaved probe over `u64` keys for the lanes whose
/// inline checks already missed: each entry `p` starts at `cur[p]`
/// (distance `dist[p]` from its home) and advances one wide window per
/// turn, round-robin
/// across entries, so the next entry's loads issue while the previous
/// entry's compare retires — keeping up to `needles.len()` cache misses
/// in flight across the long probe chains. The table is not modified,
/// so entry order is irrelevant here; ordering is enforced at commit
/// time.
#[inline(never)]
#[allow(clippy::too_many_arguments)] // split borrows of the table's parallel arrays + per-lane state
fn probe_pending_u64(
    keys: &[u64],
    states: &[u16],
    mask: usize,
    needles: &[u64],
    cur: &mut [usize],
    dist: &mut [usize],
    out: &mut [LaneProbe],
    use_simd: bool,
) {
    let len = keys.len();
    let mut np = needles.len();
    debug_assert!(np <= KERNEL_LANES && cur.len() == np && dist.len() == np && out.len() == np);
    let mut active = [0usize; KERNEL_LANES];
    for (p, a) in active.iter_mut().take(np).enumerate() {
        *a = p;
    }
    while np > 0 {
        let mut t = 0;
        while t < np {
            let l = active[t];
            let i = cur[l];
            let step = if i + SCAN_WIDTH <= len {
                #[cfg(target_arch = "x86_64")]
                let step = if use_simd {
                    // SAFETY: `use_simd` is only true after
                    // `wide_scan_simd_enabled` verified AVX2 at runtime,
                    // and the window bound was just checked.
                    #[allow(unsafe_code)]
                    unsafe {
                        scan4_avx2(keys, states, i, needles[l])
                    }
                } else {
                    scan4_portable(keys, states, i, needles[l])
                };
                #[cfg(not(target_arch = "x86_64"))]
                let step = {
                    let _ = use_simd;
                    scan4_portable(keys, states, i, needles[l])
                };
                match step {
                    None => {
                        let next = (i + SCAN_WIDTH) & mask;
                        cur[l] = next;
                        dist[l] += SCAN_WIDTH;
                        prefetch_read(keys, next + SCAN_WIDTH);
                        prefetch_read(states, next + SCAN_WIDTH);
                        None
                    }
                    Some((t_off, matched)) => Some((i + t_off, dist[l] + t_off, matched)),
                }
            } else {
                // Scalar step across the ring boundary (rare: only the
                // last few slots of the array).
                if states[i] == 0 {
                    Some((i, dist[l], false))
                } else if keys[i] == needles[l] {
                    Some((i, dist[l], true))
                } else {
                    cur[l] = (i + 1) & mask;
                    dist[l] += 1;
                    None
                }
            };
            match step {
                Some((slot, d, matched)) => {
                    out[l] = LaneProbe {
                        slot,
                        dist: d,
                        matched,
                    };
                    np -= 1;
                    active.swap(t, np);
                }
                None => t += 1,
            }
        }
    }
}

/// Result of [`LpTable::adjust_or_insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Upsert {
    /// The key was already present; its value was adjusted.
    Updated,
    /// The key was inserted with the given value.
    Inserted,
}

/// Open-addressing counter table with linear probing and parallel
/// key/value/state arrays (§2.3.3), generic over the key type.
#[derive(Clone, Debug)]
pub struct LpTable<K: SketchKey = u64> {
    keys: Vec<K>,
    values: Vec<i64>,
    states: Vec<u16>,
    mask: usize,
    num_active: usize,
    /// Reusable run-gap scratch for [`Self::compact_filter_map`]: purges
    /// run in the ingest hot path, so the sweep must not allocate per
    /// round once the buffer has warmed up (asserted by the fig1 bench).
    compaction_gaps: Vec<usize>,
}

impl<K: SketchKey> LpTable<K> {
    /// Creates a table with `2^lg_len` slots.
    ///
    /// # Panics
    /// Panics if `lg_len` is 0 or greater than 31 (the paper's state-width
    /// analysis covers k ≤ 2³²; larger tables would also overflow the
    /// 2-byte state with non-negligible probability).
    pub fn with_lg_len(lg_len: u32) -> Self {
        assert!(
            (1..=31).contains(&lg_len),
            "lg_len {lg_len} outside supported range 1..=31"
        );
        let len = 1usize << lg_len;
        Self {
            keys: vec![K::default(); len],
            values: vec![0; len],
            states: vec![0; len],
            mask: len - 1,
            num_active: 0,
            compaction_gaps: Vec::new(),
        }
    }

    /// Capacity of the reusable compaction scratch buffer (test/bench
    /// aid: steady state must be O(1) allocations per purge).
    #[doc(hidden)]
    pub fn compaction_scratch_capacity(&self) -> usize {
        self.compaction_gaps.capacity()
    }

    /// Number of slots `L` in the table.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no counters are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_active == 0
    }

    /// Number of occupied slots (assigned counters).
    #[inline]
    pub fn num_active(&self) -> usize {
        self.num_active
    }

    /// Bytes of heap memory held by the three parallel arrays:
    /// `size_of::<K>() + 8 + 2` per slot — 18 bytes for `u64` keys,
    /// matching the §2.3.3 accounting. Heap storage *inside* keys (e.g.
    /// `String` buffers) is not counted.
    #[inline]
    pub fn memory_bytes(&self) -> usize {
        self.len() * (core::mem::size_of::<K>() + 8 + 2)
    }

    #[inline]
    fn home(&self, key: &K) -> usize {
        (key.hash_key() as usize) & self.mask
    }

    /// Looks up `key`, returning its counter value if assigned.
    pub fn get(&self, key: &K) -> Option<i64> {
        let mut i = self.home(key);
        loop {
            if self.states[i] == 0 {
                return None;
            }
            if self.keys[i] == *key {
                return Some(self.values[i]);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Adds `delta` to `key`'s counter, inserting the key with value `delta`
    /// if absent. The caller must leave at least one empty slot in the table
    /// (the sketch's 3/4 capacity discipline guarantees this).
    ///
    /// # Panics
    /// Panics if the table is completely full, or if the probe distance of a
    /// new insertion would exceed the 2-byte state range (never observed at
    /// the design load factor; see the module docs).
    pub fn adjust_or_insert(&mut self, key: K, delta: i64) -> Upsert {
        assert!(
            self.num_active < self.len(),
            "LpTable overflow: caller must keep load below 100%"
        );
        let home = self.home(&key);
        self.upsert_at(home, key, delta).0
    }

    /// [`Self::adjust_or_insert`], but returns the post-update counter
    /// value (the engine's lazy-decay bookkeeping tracks the running
    /// stored maximum).
    pub(crate) fn adjust_or_insert_value(&mut self, key: K, delta: i64) -> i64 {
        assert!(
            self.num_active < self.len(),
            "LpTable overflow: caller must keep load below 100%"
        );
        let home = self.home(&key);
        self.upsert_at(home, key, delta).1
    }

    /// Probe loop shared by the scalar and batch paths; `home` is the
    /// key's precomputed preferred slot. Returns the outcome and the
    /// post-update counter value (the engine's lazy-decay bookkeeping
    /// tracks the running maximum stored value).
    #[inline]
    fn upsert_at(&mut self, home: usize, key: K, delta: i64) -> (Upsert, i64) {
        debug_assert_eq!(home, self.home(&key));
        let mut i = home;
        let mut dist: usize = 0;
        loop {
            if self.states[i] == 0 {
                assert!(
                    dist < u16::MAX as usize,
                    "probe distance {dist} exceeds 2-byte state range"
                );
                self.keys[i] = key;
                self.values[i] = delta;
                self.states[i] = (dist + 1) as u16;
                self.num_active += 1;
                return (Upsert::Inserted, delta);
            }
            if self.keys[i] == key {
                self.values[i] += delta;
                return (Upsert::Updated, self.values[i]);
            }
            i = (i + 1) & self.mask;
            dist += 1;
        }
    }

    /// Zero-copy batch entry for the sketch's update path: like
    /// [`Self::adjust_or_insert_batch`] but consuming `(key, weight)`
    /// pairs with unsigned weights straight from the caller's stream
    /// slice, and folding the stream accounting into the same pass (so
    /// the batch touches each input pair exactly once). Zero weights are
    /// skipped (they carry no frequency mass and must not allocate a
    /// counter). Returns `(total_weight, applied)`: the sum of all
    /// weights and the number of non-zero-weight updates applied.
    ///
    /// # Panics
    /// Panics if a weight exceeds `i64::MAX`, with updates before the
    /// offending pair already applied — byte-identical to what a scalar
    /// update loop would have done before panicking at the same pair.
    pub fn adjust_or_insert_batch_weighted(&mut self, batch: &[(K, u64)]) -> (u128, u64) {
        let mut total: u128 = 0;
        let mut applied: u64 = 0;
        for chunk in batch.chunks(BATCH_CHUNK) {
            assert!(
                self.num_active + chunk.len() < self.len(),
                "LpTable overflow: batch of {} cannot keep load below 100%",
                chunk.len()
            );
            let mut homes = [0usize; BATCH_CHUNK];
            for (j, (key, _)) in chunk.iter().enumerate() {
                homes[j] = self.home(key);
            }
            let n = chunk.len();
            for &home in homes.iter().take(PREFETCH_AHEAD.min(n)) {
                self.prefetch_slot(home);
            }
            for j in 0..n {
                if j + PREFETCH_AHEAD < n {
                    self.prefetch_slot(homes[j + PREFETCH_AHEAD]);
                }
                let (key, weight) = &chunk[j];
                let weight = *weight;
                if weight == 0 {
                    continue;
                }
                assert!(
                    weight <= i64::MAX as u64,
                    "update weight {weight} exceeds supported range"
                );
                total += weight as u128;
                applied += 1;
                self.upsert_at(homes[j], key.clone(), weight as i64);
            }
        }
        (total, applied)
    }

    /// Scaled twin of [`Self::adjust_or_insert_batch_weighted`] for the
    /// engine's lazy-decay bypass: each applied delta is `weight × scale`
    /// (the pending decay inflation) and the maximum post-update counter
    /// value is tracked (the lazy overflow guard needs it). Stops before
    /// the first pair whose *inflated* weight would not fit in `i64` —
    /// the caller materializes the pending decay (scale returns to 1)
    /// and retries the remainder. Zero weights are skipped. Returns
    /// `(consumed, total_weight, applied, max_value)`: input pairs fully
    /// processed (equal to `batch.len()` when nothing stopped early),
    /// the sum of *raw* (uninflated) weights, the number of non-zero
    /// updates applied, and the largest counter value written
    /// (`i64::MIN` if none were).
    ///
    /// # Panics
    /// Panics if a raw weight exceeds `i64::MAX`, with updates before
    /// the offending pair already applied — matching the scalar panic
    /// point.
    pub(crate) fn adjust_or_insert_batch_weighted_scaled(
        &mut self,
        batch: &[(K, u64)],
        scale: i64,
    ) -> (usize, u128, u64, i64) {
        debug_assert!(scale >= 1);
        let inflatable = (i64::MAX / scale) as u64;
        let mut total: u128 = 0;
        let mut applied: u64 = 0;
        let mut max_seen = i64::MIN;
        let mut consumed = 0usize;
        for chunk in batch.chunks(BATCH_CHUNK) {
            assert!(
                self.num_active + chunk.len() < self.len(),
                "LpTable overflow: batch of {} cannot keep load below 100%",
                chunk.len()
            );
            let mut homes = [0usize; BATCH_CHUNK];
            for (j, (key, _)) in chunk.iter().enumerate() {
                homes[j] = self.home(key);
            }
            let n = chunk.len();
            for &home in homes.iter().take(PREFETCH_AHEAD.min(n)) {
                self.prefetch_slot(home);
            }
            for j in 0..n {
                if j + PREFETCH_AHEAD < n {
                    self.prefetch_slot(homes[j + PREFETCH_AHEAD]);
                }
                let (key, weight) = &chunk[j];
                let weight = *weight;
                if weight == 0 {
                    consumed += 1;
                    continue;
                }
                assert!(
                    weight <= i64::MAX as u64,
                    "update weight {weight} exceeds supported range"
                );
                if weight > inflatable {
                    return (consumed, total, applied, max_seen);
                }
                total += weight as u128;
                applied += 1;
                let (_, value) = self.upsert_at(homes[j], key.clone(), weight as i64 * scale);
                if value > max_seen {
                    max_seen = value;
                }
                consumed += 1;
            }
        }
        (consumed, total, applied, max_seen)
    }

    /// Prefetches the three parallel arrays at slot `i` so the probe loop
    /// finds its first touch already in cache.
    #[inline(always)]
    fn prefetch_slot(&self, i: usize) {
        prefetch_read(&self.states, i);
        prefetch_read(&self.keys, i);
        prefetch_read(&self.values, i);
    }

    /// Batched [`Self::adjust_or_insert`]: applies every `(key, delta)`
    /// pair **in order**, producing exactly the state a scalar loop would.
    /// Since the ingest-kernel overhaul this is a thin wrapper over
    /// [`Self::upsert_batch_kernel`] — multi-lane probing plus wide slot
    /// scanning — kept under its historical name for the grow/rehash path
    /// and external callers.
    ///
    /// # Panics
    /// Panics if the pending insertions could fill the table completely;
    /// the caller must keep `num_active + batch.len() < len` per chunk
    /// (the sketch's capacity discipline guarantees this).
    pub fn adjust_or_insert_batch(&mut self, batch: &[(K, i64)]) {
        self.upsert_batch_kernel(batch);
    }

    /// The multi-lane ingest kernel: applies every `(key, delta)` pair,
    /// state-identically to a scalar [`Self::adjust_or_insert`] loop over
    /// the same pairs in the same order, and returns the maximum
    /// post-update counter value touched (`i64::MIN` for an empty batch;
    /// the engine's lazy-decay accounting needs the running maximum).
    ///
    /// Three stacked mechanisms, each pinned by differential tests:
    ///
    /// 1. homes for a 64-pair chunk are precomputed and software-
    ///    prefetched ahead of the probe cursor (as before);
    /// 2. the chunk sweeps in pair order: home matches commit inline
    ///    (counter adds never change occupancy, so no other probe can
    ///    observe the reordering), while inserts and home misses queue
    ///    and flush `KERNEL_LANES` at a time — probing **read-only**
    ///    as an interleaved state machine, then committing in lane
    ///    order. The only way a queued lane's read-only probe can
    ///    disagree with sequential execution is when two *insert* lanes
    ///    resolved to the same empty slot (an earlier lane's insert at
    ///    slot `s` cannot lie on a later lane's probe path otherwise:
    ///    every path cell was observed occupied, and `s` was observed
    ///    empty — so a later probe could only have *stopped* at `s`,
    ///    i.e. resolved to the same slot). Lanes from the first such
    ///    collision fall back to the sequential probe loop, preserving
    ///    FCFS insert order exactly;
    /// 3. each probe step examines `SCAN_WIDTH` contiguous slots via an
    ///    explicitly unrolled `u64` compare (or its runtime-gated AVX2
    ///    twin) when the key type is `u64`.
    ///
    /// # Panics
    /// As [`Self::adjust_or_insert_batch`], plus the scalar path's probe
    /// distance assertion, raised in the same pair order.
    pub fn upsert_batch_kernel(&mut self, pairs: &[(K, i64)]) -> i64 {
        self.kernel_inner::<true>(pairs, None)
    }

    /// [`Self::upsert_batch_kernel`] with precomputed key hashes (parallel
    /// slice, `hashes[j] == pairs[j].0.hash_key()`): the engine's
    /// aggregation pass already hashed every surviving key for its dedup
    /// cache, so the kernel derives home slots from those hashes instead
    /// of hashing a second time. `track_max` selects whether the maximum
    /// post-update counter value is tracked (monomorphized away when the
    /// engine has no pending lazy decay); when false the return value is
    /// unspecified.
    pub(crate) fn upsert_batch_kernel_hashed(
        &mut self,
        pairs: &[(K, i64)],
        hashes: &[u64],
        track_max: bool,
    ) -> i64 {
        debug_assert_eq!(pairs.len(), hashes.len());
        if track_max {
            self.kernel_inner::<true>(pairs, Some(hashes))
        } else {
            self.kernel_inner::<false>(pairs, Some(hashes))
        }
    }

    fn kernel_inner<const TM: bool>(&mut self, pairs: &[(K, i64)], hashes: Option<&[u64]>) -> i64 {
        let mut max_seen = i64::MIN;
        let wide = K::key_slice_as_u64(&self.keys).is_some();
        let use_simd = wide && wide_scan_simd_enabled();
        let mut off = 0usize;
        for chunk in pairs.chunks(BATCH_CHUNK) {
            assert!(
                self.num_active + chunk.len() < self.len(),
                "LpTable overflow: batch of {} cannot keep load below 100%",
                chunk.len()
            );
            let mut homes = [0usize; BATCH_CHUNK];
            match hashes {
                Some(h) => {
                    for j in 0..chunk.len() {
                        homes[j] = (h[off + j] as usize) & self.mask;
                        debug_assert_eq!(homes[j], self.home(&chunk[j].0));
                    }
                }
                None => {
                    for (j, (key, _)) in chunk.iter().enumerate() {
                        homes[j] = self.home(key);
                    }
                }
            }
            let n = chunk.len();
            off += n;
            for &home in homes.iter().take(KERNEL_LANES.min(n)) {
                self.prefetch_slot(home);
            }
            if !wide {
                // Generic keys: sequential prefetched upserts (the probe
                // compares arbitrary `K`, which the wide scan cannot).
                for j in 0..n {
                    if j + PREFETCH_AHEAD < n {
                        self.prefetch_slot(homes[j + PREFETCH_AHEAD]);
                    }
                    let (key, delta) = &chunk[j];
                    let (_, value) = self.upsert_at(homes[j], key.clone(), *delta);
                    if TM {
                        max_seen = max_seen.max(value);
                    }
                }
                continue;
            }
            // Sweep the chunk in pair order (see `sweep_pair` for the
            // ordering argument).
            let pair_at = |q: usize| {
                let (key, delta) = &chunk[q];
                (key, *delta)
            };
            let mut pend = [0usize; KERNEL_LANES];
            let mut np = 0usize;
            for j in 0..n {
                if j + PREFETCH_AHEAD < n {
                    self.prefetch_slot(homes[j + PREFETCH_AHEAD]);
                }
                let (key, delta) = &chunk[j];
                self.sweep_pair::<TM, _>(
                    j,
                    key,
                    *delta,
                    &homes,
                    &mut pend,
                    &mut np,
                    &pair_at,
                    use_simd,
                    &mut max_seen,
                );
            }
            if np > 0 {
                let m = self.flush_pending_u64::<TM, _>(&pair_at, &homes, &pend, np, use_simd);
                if TM {
                    max_seen = max_seen.max(m);
                }
            }
        }
        max_seen
    }

    /// Streaming twin of [`Self::upsert_batch_kernel`]: consumes
    /// `(key, weight)` pairs straight from the caller's stream slice (no
    /// aggregation copy), folding the weight validation and stream
    /// accounting into the sweep. Zero weights are skipped. Returns
    /// `(total_weight, applied)`.
    ///
    /// Kept as the lane kernel's entry in the `weighted_paths_bench`
    /// micro-benchmark, which is why the engine's low-duplication
    /// bypass dispatches to [`Self::adjust_or_insert_batch_weighted`]
    /// instead: undeduplicated streams are match-heavy with short
    /// probes, and there the prefetched sequential sweep measures
    /// ~1.1× faster — the lane machinery only pays once aggregation
    /// has collapsed duplicates and amortized its cost.
    ///
    /// # Panics
    /// Panics if a weight exceeds `i64::MAX`, with updates before the
    /// offending pair already applied (queued lanes are flushed first) —
    /// state-identical to a scalar loop panicking at the same pair.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn upsert_batch_weighted_kernel(&mut self, batch: &[(K, u64)]) -> (u128, u64) {
        let use_simd = wide_scan_simd_enabled();
        let mut total: u128 = 0;
        let mut applied: u64 = 0;
        for chunk in batch.chunks(BATCH_CHUNK) {
            assert!(
                self.num_active + chunk.len() < self.len(),
                "LpTable overflow: batch of {} cannot keep load below 100%",
                chunk.len()
            );
            let mut homes = [0usize; BATCH_CHUNK];
            for (j, (key, _)) in chunk.iter().enumerate() {
                homes[j] = self.home(key);
            }
            let n = chunk.len();
            for &home in homes.iter().take(KERNEL_LANES.min(n)) {
                self.prefetch_slot(home);
            }
            let pair_at = |q: usize| {
                let (key, weight) = &chunk[q];
                (key, *weight as i64)
            };
            let mut pend = [0usize; KERNEL_LANES];
            let mut np = 0usize;
            for j in 0..n {
                if j + PREFETCH_AHEAD < n {
                    self.prefetch_slot(homes[j + PREFETCH_AHEAD]);
                }
                let (key, weight) = &chunk[j];
                let weight = *weight;
                if weight == 0 {
                    continue;
                }
                if weight > i64::MAX as u64 {
                    // Every earlier pair must be applied before the
                    // panic, exactly as a scalar loop would have.
                    if np > 0 {
                        self.flush_pending_u64::<false, _>(&pair_at, &homes, &pend, np, use_simd);
                    }
                    panic!("update weight {weight} exceeds supported range");
                }
                total += weight as u128;
                applied += 1;
                let mut max_unused = i64::MIN;
                self.sweep_pair::<false, _>(
                    j,
                    key,
                    weight as i64,
                    &homes,
                    &mut pend,
                    &mut np,
                    &pair_at,
                    use_simd,
                    &mut max_unused,
                );
            }
            if np > 0 {
                self.flush_pending_u64::<false, _>(&pair_at, &homes, &pend, np, use_simd);
            }
        }
        (total, applied)
    }

    /// One sweep step of the `u64` kernel, shared by the aggregated and
    /// streaming entry points. Home (and distance-1) matches commit on
    /// the spot — a counter add never changes occupancy or stored keys,
    /// so no other pair's probe can observe the difference. Inserts
    /// resolve inline only while the flush queue is empty (every earlier
    /// pair has then committed, so resolving immediately IS sequential
    /// execution); otherwise they queue with the home misses for the
    /// multi-lane flush. Occupancy only changes inline-while-empty or
    /// inside flushes, so everything a queued lane observed at sweep
    /// time is still true when it flushes.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn sweep_pair<'a, const TM: bool, F>(
        &mut self,
        j: usize,
        key: &K,
        delta: i64,
        homes: &[usize; BATCH_CHUNK],
        pend: &mut [usize; KERNEL_LANES],
        np: &mut usize,
        pair_at: &F,
        use_simd: bool,
        max_seen: &mut i64,
    ) where
        F: Fn(usize) -> (&'a K, i64),
        K: 'a,
    {
        let i = homes[j];
        if self.states[i] != 0 {
            if self.keys[i] == *key {
                self.values[i] += delta;
                if TM {
                    *max_seen = (*max_seen).max(self.values[i]);
                }
                return;
            }
            // Distance-1 outcomes are common at the design load and
            // usually sit on the home slot's cache line: check inline
            // rather than paying the flush machinery.
            let i1 = (i + 1) & self.mask;
            if self.states[i1] != 0 {
                if self.keys[i1] == *key {
                    self.values[i1] += delta;
                    if TM {
                        *max_seen = (*max_seen).max(self.values[i1]);
                    }
                    return;
                }
                // Distance >= 2: the flush probes from home + 2.
                self.prefetch_slot((i1 + 1) & self.mask);
            } else if *np == 0 {
                self.keys[i1] = key.clone();
                self.values[i1] = delta;
                self.states[i1] = 2;
                self.num_active += 1;
                if TM {
                    *max_seen = (*max_seen).max(delta);
                }
                return;
            }
        } else if *np == 0 {
            self.keys[i] = key.clone();
            self.values[i] = delta;
            self.states[i] = 1;
            self.num_active += 1;
            if TM {
                *max_seen = (*max_seen).max(delta);
            }
            return;
        }
        pend[*np] = j;
        *np += 1;
        if *np == KERNEL_LANES {
            let m = self.flush_pending_u64::<TM, _>(pair_at, homes, pend, KERNEL_LANES, use_simd);
            if TM {
                *max_seen = (*max_seen).max(m);
            }
            *np = 0;
        }
    }

    /// Flushes up to `KERNEL_LANES` queued (non-home-match) lanes,
    /// state-identically to a sequential loop over them:
    ///
    /// - lanes whose first empty slot is at distance 0 or 1 resolve
    ///   read-only as direct inserts (the sweep already ruled out key
    ///   matches there, and occupancy cannot have changed since);
    /// - the rest probe read-only on the interleaved wide machine
    ///   ([`probe_pending_u64`]), starting at home + 2;
    /// - all lanes then commit in lane order under the insert-collision
    ///   rule: with at most one insert lane no two inserts can collide
    ///   (skipping the pairwise scan); otherwise lanes from the first
    ///   pair of inserts that resolved to the same empty slot re-probe
    ///   sequentially, because the earlier insert changed the occupancy
    ///   their read-only probe observed.
    ///
    /// Returns the maximum post-update counter value in the flush (when
    /// `TM`; unspecified otherwise). `pair_at` resolves a queued chunk
    /// index to its `(key, delta)` pair.
    fn flush_pending_u64<'a, const TM: bool, F>(
        &mut self,
        pair_at: &F,
        homes: &[usize; BATCH_CHUNK],
        pend: &[usize; KERNEL_LANES],
        np: usize,
        use_simd: bool,
    ) -> i64
    where
        F: Fn(usize) -> (&'a K, i64),
        K: 'a,
    {
        // Probe outcomes indexed by queue position (queue order == lane
        // order); `mpos` maps machine position back to queue position.
        let mut probes = [LaneProbe::default(); KERNEL_LANES];
        let mut mpos = [0usize; KERNEL_LANES];
        let mut needles = [0u64; KERNEL_LANES];
        let mut cur = [0usize; KERNEL_LANES];
        let mut dist = [2usize; KERNEL_LANES];
        let mut nm = 0usize;
        for q in 0..np {
            let i = homes[pend[q]];
            // Re-derive what the sweep observed: occupancy cannot have
            // changed since (only flushes insert), and the sweep already
            // ruled out key matches at distances 0 and 1.
            if self.states[i] == 0 {
                probes[q] = LaneProbe {
                    slot: i,
                    dist: 0,
                    matched: false,
                };
                continue;
            }
            let i1 = (i + 1) & self.mask;
            if self.states[i1] == 0 {
                probes[q] = LaneProbe {
                    slot: i1,
                    dist: 1,
                    matched: false,
                };
                continue;
            }
            mpos[nm] = q;
            needles[nm] = K::key_slice_as_u64(core::slice::from_ref(pair_at(pend[q]).0))
                .expect("wide path requires u64 keys")[0];
            cur[nm] = (i1 + 1) & self.mask;
            nm += 1;
        }
        if nm > 0 {
            let mut pout = [LaneProbe::default(); KERNEL_LANES];
            {
                let keys64 = K::key_slice_as_u64(&self.keys).expect("wide path requires u64 keys");
                probe_pending_u64(
                    keys64,
                    &self.states,
                    self.mask,
                    &needles[..nm],
                    &mut cur[..nm],
                    &mut dist[..nm],
                    &mut pout[..nm],
                    use_simd,
                );
            }
            for m in 0..nm {
                probes[mpos[m]] = pout[m];
            }
        }
        // With zero or one insert lane no two inserts can collide,
        // skipping the pairwise scan.
        let inserts = probes[..np].iter().filter(|p| !p.matched).count();
        let mut fallback_from = np;
        if inserts >= 2 {
            'scan: for j in 1..np {
                if probes[j].matched {
                    continue;
                }
                for i in 0..j {
                    if !probes[i].matched && probes[i].slot == probes[j].slot {
                        fallback_from = j;
                        break 'scan;
                    }
                }
            }
        }
        let mut max_seen = i64::MIN;
        for q in 0..fallback_from {
            let p = probes[q];
            let (key, delta) = pair_at(pend[q]);
            let value = if p.matched {
                debug_assert!(self.states[p.slot] != 0 && self.keys[p.slot] == *key);
                self.values[p.slot] += delta;
                self.values[p.slot]
            } else {
                debug_assert!(self.states[p.slot] == 0);
                assert!(
                    p.dist < u16::MAX as usize,
                    "probe distance {} exceeds 2-byte state range",
                    p.dist
                );
                self.keys[p.slot] = key.clone();
                self.values[p.slot] = delta;
                self.states[p.slot] = (p.dist + 1) as u16;
                self.num_active += 1;
                delta
            };
            if TM {
                max_seen = max_seen.max(value);
            }
        }
        for q in fallback_from..np {
            let (key, delta) = pair_at(pend[q]);
            let (_, value) = self.upsert_at(homes[pend[q]], key.clone(), delta);
            if TM {
                max_seen = max_seen.max(value);
            }
        }
        max_seen
    }

    /// Returns the maximum assigned counter value, or `None` if empty.
    /// O(L) scan; the engine's lazy-decay bookkeeping refreshes its
    /// stored-value maximum with this after purges and materializations.
    pub fn max_value(&self) -> Option<i64> {
        let mut max = None;
        for i in 0..self.len() {
            if self.states[i] != 0 {
                max = Some(match max {
                    None => self.values[i],
                    Some(m) if self.values[i] > m => self.values[i],
                    Some(m) => m,
                });
            }
        }
        max
    }

    /// Adds `delta` to every assigned counter (used by the purge with a
    /// negative `delta`). Values may become non-positive; follow with
    /// [`LpTable::retain_positive`].
    pub fn adjust_all(&mut self, delta: i64) {
        for i in 0..self.len() {
            if self.states[i] != 0 {
                self.values[i] += delta;
            }
        }
    }

    /// One full purge step: subtracts `cstar` from every counter, removes
    /// the non-positive ones, and returns `(removed, max_kept)` — how
    /// many were removed and the largest surviving counter value
    /// (`i64::MIN` if none survive). The maximum falls out of the sweep
    /// for free; the engine's lazy-decay bookkeeping needs it and would
    /// otherwise pay a second O(L) [`Self::max_value`] scan.
    ///
    /// Single sequential pass, in place: decrement, delete, and
    /// run-compaction are fused (one compaction pass, shared with
    /// [`Self::scale_values`]). This replaces the
    /// per-deletion backward-shift sweep (`adjust_all` +
    /// [`Self::retain_positive`]), whose cost degrades to O(cluster²) per
    /// run exactly when purges kill large fractions of the table — the
    /// common case, since the median policies remove about half the
    /// counters per purge.
    pub fn purge_decrement(&mut self, cstar: i64) -> (usize, i64) {
        debug_assert!(cstar > 0);
        self.compact_filter_map(|v| v - cstar)
    }

    /// Scales every counter to `⌊value · num / den⌋` in place, removing
    /// the counters that scale to zero, and returns `(removed, max_kept)`
    /// — how many were removed and the largest surviving value
    /// (`i64::MIN` if none survive, or on the `num == den` identity
    /// early-return, which does not sweep). This is the table-level
    /// primitive behind the engine's
    /// [`crate::SketchEngine::scale_counters`] time-fading hook: one
    /// fused sweep through the same compaction path as the purge, so the
    /// post-scale layout obeys exactly the same canonical-FCFS
    /// discipline — and the surviving maximum (which the engine's
    /// lazy-decay bookkeeping consumes) rides along without a second
    /// scan.
    ///
    /// # Panics
    /// Panics if `den` is zero or `num > den` (the sketch only decays —
    /// scaling counters up could overflow and certifies nothing).
    pub fn scale_values(&mut self, num: u64, den: u64) -> (usize, i64) {
        assert!(den > 0, "scale denominator must be positive");
        assert!(num <= den, "scale_values only scales down ({num}/{den})");
        if num == den {
            return (0, i64::MIN);
        }
        // Counters are positive i64, so the u128 product cannot overflow
        // and the floored quotient fits back into i64.
        self.compact_filter_map(|v| (v as u128 * num as u128 / den as u128) as i64)
    }

    /// The fused compaction pass shared by [`Self::purge_decrement`] and
    /// [`Self::scale_values`]: maps every counter through `f` in one
    /// sequential sweep, deletes entries whose mapped value is
    /// non-positive, and compacts the survivors in place. Each survivor's
    /// home cell is recovered from its probe-distance state (no hashing,
    /// no random access), and it slides to the first free slot of its run
    /// at-or-after its home — the canonical FCFS linear-probing layout,
    /// identical to what a fresh build over the surviving counters
    /// produces. `f` must not increase any value (mapped ≤ original), so
    /// shrunken probe runs can only tighten.
    fn compact_filter_map(&mut self, f: impl Fn(i64) -> i64) -> (usize, i64) {
        let mut max_kept = i64::MIN;
        if self.num_active == 0 {
            return (0, max_kept);
        }
        let len = self.len();
        let mask = self.mask;
        // The capacity discipline guarantees an empty slot; runs cannot
        // span it, so starting the sweep there lets every run (including
        // the one wrapping the array end) be processed contiguously.
        let first_empty = (0..len)
            .find(|&i| self.states[i] == 0)
            .expect("table is never 100% full");
        // Ring rank relative to the scan origin: monotone in scan order,
        // so "first free slot at-or-after a home cell" is an ordinary
        // order comparison even across the array-end wrap.
        let rank = |p: usize| p.wrapping_sub(first_empty) & mask;
        let mut removed = 0usize;
        // Free slots of the *current* run, ascending by rank. Deaths and
        // vacated sources append at the scan head, so the order is
        // maintained by construction; placements remove from the middle.
        // Runs are short at the 3/4 load bound, so this stays tiny — and
        // the buffer is owned by the table, so steady-state purge rounds
        // allocate nothing.
        let mut gaps: Vec<usize> = core::mem::take(&mut self.compaction_gaps);
        gaps.clear();
        let mut i = (first_empty + 1) & mask;
        for _ in 0..len - 1 {
            let state = self.states[i];
            if state == 0 {
                // Run boundary: holes cannot be used across it.
                gaps.clear();
                i = (i + 1) & mask;
                continue;
            }
            let mapped = f(self.values[i]);
            debug_assert!(mapped <= self.values[i], "compaction must not grow values");
            if mapped <= 0 {
                self.states[i] = 0;
                self.keys[i] = K::default();
                gaps.push(i);
                removed += 1;
            } else {
                if mapped > max_kept {
                    max_kept = mapped;
                }
                // Survivor: its home cell is encoded in the state — no
                // hash, no key read needed for placement. It slides to
                // the first free slot at-or-after its home, exactly where
                // a fresh FCFS re-insertion would put it.
                let home = i.wrapping_sub(state as usize - 1) & mask;
                let pos = gaps.partition_point(|&g| rank(g) < rank(home));
                if pos < gaps.len() {
                    let dest = gaps.remove(pos);
                    self.keys.swap(dest, i);
                    self.values[dest] = mapped;
                    self.states[dest] = ((dest.wrapping_sub(home) & mask) + 1) as u16;
                    self.states[i] = 0;
                    gaps.push(i);
                } else {
                    self.values[i] = mapped;
                }
            }
            i = (i + 1) & mask;
        }
        self.compaction_gaps = gaps;
        self.num_active -= removed;
        (removed, max_kept)
    }

    /// Deletes every counter whose value is `<= 0`, compacting runs in place
    /// by backward-shifting (no tombstones, no scratch memory). Returns the
    /// number of counters removed.
    pub fn retain_positive(&mut self) -> usize {
        let len = self.len();
        let mut removed = 0usize;
        let mut i = 0usize;
        while i < len {
            if self.states[i] != 0 && self.values[i] <= 0 {
                self.delete_slot(i);
                removed += 1;
                // Do not advance: delete_slot may have shifted a (positive
                // or non-positive) entry into slot i; re-examine it.
                // Entries shifted into *already scanned* slots are always
                // positive: they can only originate from the wrapped prefix
                // of a run, which the scan has already cleaned.
            } else {
                i += 1;
            }
        }
        removed
    }

    /// Removes the entry at occupied slot `hole`, restoring the probing
    /// invariant by backward-shifting subsequent entries of the run.
    fn delete_slot(&mut self, mut hole: usize) {
        debug_assert!(self.states[hole] != 0);
        self.num_active -= 1;
        let mask = self.mask;
        let mut j = hole;
        loop {
            self.states[hole] = 0;
            loop {
                j = (j + 1) & mask;
                if self.states[j] == 0 {
                    // The deleted key has migrated (via the swaps below)
                    // into the final hole; drop it.
                    self.keys[hole] = K::default();
                    return;
                }
                let dist = (self.states[j] - 1) as usize;
                let home = j.wrapping_sub(dist) & mask;
                // The entry at j may move into the hole iff the hole lies on
                // its probe path, i.e. strictly closer to its home cell.
                let new_dist = hole.wrapping_sub(home) & mask;
                if new_dist < dist {
                    self.keys.swap(hole, j);
                    self.values[hole] = self.values[j];
                    self.states[hole] = (new_dist + 1) as u16;
                    hole = j;
                    break;
                }
            }
        }
    }

    /// Iterates over `(&key, value)` pairs of assigned counters in slot
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, i64)> + '_ {
        (0..self.len()).filter_map(move |i| {
            if self.states[i] != 0 {
                Some((&self.keys[i], self.values[i]))
            } else {
                None
            }
        })
    }

    /// Iterates over `(&key, value)` pairs in a *randomized* slot order:
    /// a random start offset and a random odd stride (a permutation of the
    /// power-of-two slot space). Used by the merge procedure to avoid the
    /// probe-clustering pathology of §3.2's Note when both summaries share
    /// the hash function.
    pub fn iter_randomized<'a>(
        &'a self,
        rng: &mut Xoshiro256StarStar,
    ) -> impl Iterator<Item = (&'a K, i64)> + 'a {
        let len = self.len();
        let start = rng.next_below(len as u64) as usize;
        let stride = (rng.next_u64() as usize | 1) & self.mask;
        let mask = self.mask;
        (0..len).filter_map(move |t| {
            let i = start.wrapping_add(t.wrapping_mul(stride)) & mask;
            if self.states[i] != 0 {
                Some((&self.keys[i], self.values[i]))
            } else {
                None
            }
        })
    }

    /// Copies all assigned counter values into `out` (clearing it first).
    /// This is the "extra k words" pass that Algorithm 3 needs and that the
    /// sampling policies avoid.
    pub fn values_into(&self, out: &mut Vec<i64>) {
        out.clear();
        out.reserve(self.num_active);
        for i in 0..self.len() {
            if self.states[i] != 0 {
                out.push(self.values[i]);
            }
        }
    }

    /// Draws `sample_size` counter values (with replacement across slots)
    /// uniformly from the assigned counters into `out`. If fewer than
    /// `sample_size` counters are assigned, copies all of them instead.
    ///
    /// Rejection sampling over slots: at the 3/4 purge-time load factor the
    /// expected number of probes per sample is 4/3.
    pub fn sample_values(
        &self,
        rng: &mut Xoshiro256StarStar,
        sample_size: usize,
        out: &mut Vec<i64>,
    ) {
        if self.num_active <= sample_size {
            self.values_into(out);
            return;
        }
        out.clear();
        out.reserve(sample_size);
        let len = self.len() as u64;
        while out.len() < sample_size {
            let i = rng.next_below(len) as usize;
            if self.states[i] != 0 {
                out.push(self.values[i]);
            }
        }
    }

    /// Returns the minimum assigned counter value, or `None` if empty.
    /// O(L) scan; used by the `GlobalMin` (RBMC-style) purge policy.
    pub fn min_value(&self) -> Option<i64> {
        let mut min = None;
        for i in 0..self.len() {
            if self.states[i] != 0 {
                min = Some(match min {
                    None => self.values[i],
                    Some(m) if self.values[i] < m => self.values[i],
                    Some(m) => m,
                });
            }
        }
        min
    }

    /// Removes all counters.
    pub fn clear(&mut self) {
        self.states.fill(0);
        for key in &mut self.keys {
            *key = K::default();
        }
        self.num_active = 0;
    }

    /// Test/debug aid: like [`Self::iter`], but yielding the slot index
    /// alongside each `(key, value)` pair, so layout-canonicality tests
    /// can reconstruct ring scan orders.
    #[doc(hidden)]
    pub fn iter_with_slots(&self) -> impl Iterator<Item = (usize, &K, i64)> + '_ {
        (0..self.len()).filter_map(move |i| {
            if self.states[i] != 0 {
                Some((i, &self.keys[i], self.values[i]))
            } else {
                None
            }
        })
    }

    /// Test/debug aid: a byte string capturing the exact slot layout —
    /// `(slot, key hash, value)` for every occupied slot in slot order.
    /// Two tables with equal fingerprints hold the same counters in the
    /// same cells with the same probe distances. Used by the
    /// layout-canonicality proptests for the fused compaction paths.
    #[doc(hidden)]
    pub fn layout_fingerprint(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            if self.states[i] == 0 {
                continue;
            }
            out.extend_from_slice(&(i as u64).to_le_bytes());
            out.extend_from_slice(&self.keys[i].hash_key().to_le_bytes());
            out.extend_from_slice(&self.values[i].to_le_bytes());
        }
        out
    }

    /// Re-occupies `slot` with `(key, value)` exactly as recorded by a
    /// checkpoint: the state encodes the probe distance from the key's
    /// home cell to `slot`. Used by the persistence layer to rebuild a
    /// table **layout-identically** — re-inserting keys through the
    /// normal upsert path does not reproduce wrap-around probe clusters,
    /// so a refeed-based rebuild can diverge slot-for-slot from the
    /// original (and thus from an uninterrupted run).
    ///
    /// The caller must finish with [`Self::validate_layout`]: this method
    /// checks only per-slot facts (vacancy, probe distance range), not
    /// the global probing invariants.
    pub(crate) fn restore_slot(&mut self, slot: usize, key: K, value: i64) -> Result<(), String> {
        if slot >= self.len() {
            return Err(format!("slot {slot} outside table of {} cells", self.len()));
        }
        if self.states[slot] != 0 {
            return Err(format!("slot {slot} restored twice"));
        }
        if value <= 0 {
            return Err(format!("non-positive counter {value} at slot {slot}"));
        }
        let home = self.home(&key);
        let dist = slot.wrapping_sub(home) & self.mask;
        if dist >= u16::MAX as usize {
            return Err(format!(
                "probe distance {dist} at slot {slot} exceeds state range"
            ));
        }
        self.keys[slot] = key;
        self.values[slot] = value;
        self.states[slot] = dist as u16 + 1;
        self.num_active += 1;
        Ok(())
    }

    /// Non-panicking counterpart of [`Self::check_invariants`] for
    /// validating untrusted (deserialized) layouts: probe paths must be
    /// gap-free and every lookup must land on the slot that claims the
    /// key. The landing-slot check (not merely a value comparison)
    /// also rejects duplicate keys: a second copy of a key can never be
    /// the first probe match, so it fails here even when both copies
    /// carry equal values.
    pub(crate) fn validate_layout(&self) -> Result<(), String> {
        for i in 0..self.len() {
            if self.states[i] == 0 {
                continue;
            }
            let dist = (self.states[i] - 1) as usize;
            let home = i.wrapping_sub(dist) & self.mask;
            let mut j = home;
            while j != i {
                if self.states[j] == 0 {
                    return Err(format!("empty cell {j} interrupts probe path to slot {i}"));
                }
                if self.keys[j] == self.keys[i] {
                    return Err(format!(
                        "key at slot {i} is shadowed by a duplicate at slot {j}"
                    ));
                }
                j = (j + 1) & self.mask;
            }
        }
        Ok(())
    }

    /// Verifies the structural invariants (test/debug aid):
    /// states encode exact probe distances, probe paths are gap-free, the
    /// active count is consistent, and every stored key is findable.
    ///
    /// # Panics
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        let mut active = 0usize;
        for i in 0..self.len() {
            if self.states[i] == 0 {
                continue;
            }
            active += 1;
            let dist = (self.states[i] - 1) as usize;
            let home = i.wrapping_sub(dist) & self.mask;
            assert_eq!(
                home,
                self.home(&self.keys[i]),
                "slot {i}: state does not encode the key's home cell"
            );
            // Every cell on the probe path from home to i must be occupied,
            // otherwise a lookup would stop early at an empty cell.
            let mut j = home;
            while j != i {
                assert!(
                    self.states[j] != 0,
                    "slot {i}: empty cell {j} interrupts the probe path"
                );
                j = (j + 1) & self.mask;
            }
            assert_eq!(
                self.get(&self.keys[i]),
                Some(self.values[i]),
                "slot {i}: key not findable by lookup"
            );
        }
        assert_eq!(active, self.num_active, "active-count bookkeeping drifted");
    }

    /// Full structural audit as a `Result` — the `debug-invariants`
    /// sanitizer's table check, also safe to call at decode boundaries
    /// (it never panics). Covers `validate_layout` plus the
    /// probe-distance encoding, counter positivity (both engines of a
    /// signed sketch keep per-sign magnitudes, so a stored counter is
    /// always ≥ 1), and the active-count bookkeeping.
    ///
    /// # Errors
    /// Describes the first violated invariant.
    pub fn audit(&self) -> Result<(), String> {
        self.validate_layout()?;
        let mut active = 0usize;
        for i in 0..self.len() {
            if self.states[i] == 0 {
                continue;
            }
            active += 1;
            let dist = (self.states[i] - 1) as usize;
            let home = i.wrapping_sub(dist) & self.mask;
            if home != self.home(&self.keys[i]) {
                return Err(format!(
                    "slot {i}: state does not encode the key's home cell"
                ));
            }
            if self.values[i] <= 0 {
                return Err(format!("slot {i}: non-positive counter {}", self.values[i]));
            }
        }
        if active != self.num_active {
            return Err(format!(
                "active-count bookkeeping drifted: counted {active}, recorded {}",
                self.num_active
            ));
        }
        Ok(())
    }
}

impl<K: SketchKey> crate::purge::CounterValues for LpTable<K> {
    fn is_empty(&self) -> bool {
        LpTable::is_empty(self)
    }

    fn sample_values(&self, rng: &mut Xoshiro256StarStar, sample_size: usize, out: &mut Vec<i64>) {
        LpTable::sample_values(self, rng, sample_size, out)
    }

    fn values_into(&self, out: &mut Vec<i64>) {
        LpTable::values_into(self, out)
    }

    fn min_value(&self) -> Option<i64> {
        LpTable::min_value(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::Hash64;
    use std::collections::HashMap;

    fn table() -> LpTable {
        LpTable::with_lg_len(8) // 256 slots
    }

    fn pairs_of(t: &LpTable) -> Vec<(u64, i64)> {
        t.iter().map(|(&k, v)| (k, v)).collect()
    }

    #[test]
    fn insert_then_get() {
        let mut t = table();
        assert_eq!(t.adjust_or_insert(42, 7), Upsert::Inserted);
        assert_eq!(t.get(&42), Some(7));
        assert_eq!(t.get(&43), None);
        assert_eq!(t.num_active(), 1);
    }

    #[test]
    fn adjust_accumulates() {
        let mut t = table();
        t.adjust_or_insert(5, 10);
        assert_eq!(t.adjust_or_insert(5, 32), Upsert::Updated);
        assert_eq!(t.get(&5), Some(42));
        assert_eq!(t.num_active(), 1);
    }

    #[test]
    fn fills_to_three_quarters_and_stays_consistent() {
        let mut t = table();
        let cap = t.len() * 3 / 4;
        for k in 0..cap as u64 {
            t.adjust_or_insert(k, (k + 1) as i64);
        }
        assert_eq!(t.num_active(), cap);
        t.check_invariants();
        for k in 0..cap as u64 {
            assert_eq!(t.get(&k), Some((k + 1) as i64), "key {k}");
        }
    }

    #[test]
    fn batch_upsert_matches_scalar_exactly() {
        // Same pairs, same order: the batch path must be state-identical
        // to a scalar loop, including slot layout and probe distances.
        let pairs: Vec<(u64, i64)> = (0..180u64)
            .map(|i| (i * 2_654_435_761 % 120, (i % 9 + 1) as i64))
            .collect();
        let mut scalar = table();
        for &(k, d) in &pairs {
            scalar.adjust_or_insert(k, d);
        }
        let mut batched = table();
        batched.adjust_or_insert_batch(&pairs);
        batched.check_invariants();
        assert_eq!(batched.num_active(), scalar.num_active());
        assert_eq!(
            pairs_of(&scalar),
            pairs_of(&batched),
            "slot layouts diverged"
        );
    }

    #[test]
    fn batch_upsert_handles_odd_chunk_tails() {
        // Lengths around the internal chunk size exercise the prefetch
        // window clamping and the per-chunk overflow assertion.
        for len in [1usize, 7, 63, 64, 65, 130] {
            let pairs: Vec<(u64, i64)> = (0..len as u64).map(|i| (i, 1)).collect();
            let mut t = table();
            t.adjust_or_insert_batch(&pairs);
            t.check_invariants();
            assert_eq!(t.num_active(), len);
            for i in 0..len as u64 {
                assert_eq!(t.get(&i), Some(1), "key {i} of {len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "LpTable overflow")]
    fn batch_upsert_rejects_overfill() {
        let mut t: LpTable = LpTable::with_lg_len(4); // 16 slots
        let pairs: Vec<(u64, i64)> = (0..16u64).map(|i| (i, 1)).collect();
        t.adjust_or_insert_batch(&pairs);
    }

    #[test]
    fn adjust_all_shifts_every_value() {
        let mut t = table();
        for k in 0..100u64 {
            t.adjust_or_insert(k, 50);
        }
        t.adjust_all(-20);
        for k in 0..100u64 {
            assert_eq!(t.get(&k), Some(30));
        }
    }

    #[test]
    fn retain_positive_removes_exactly_nonpositive() {
        let mut t = table();
        for k in 0..100u64 {
            // Values 1..=100: after subtracting 50, keys 0..=49 die.
            t.adjust_or_insert(k, (k + 1) as i64);
        }
        t.adjust_all(-50);
        let removed = t.retain_positive();
        assert_eq!(removed, 50);
        assert_eq!(t.num_active(), 50);
        t.check_invariants();
        for k in 0..50u64 {
            assert_eq!(t.get(&k), None, "key {k} should be purged");
        }
        for k in 50..100u64 {
            assert_eq!(t.get(&k), Some((k + 1) as i64 - 50), "key {k}");
        }
    }

    #[test]
    fn purge_decrement_matches_sweep_and_retain() {
        // The fused compaction pass must agree with the reference
        // two-step purge (adjust_all + retain_positive) on contents.
        let mut rng = Xoshiro256StarStar::from_seed(77);
        for round in 0..50u64 {
            let mut a: LpTable = LpTable::with_lg_len(8);
            let mut b: LpTable = LpTable::with_lg_len(8);
            let n = 1 + rng.next_below(192) as usize;
            for _ in 0..n {
                let key = rng.next_below(400);
                let v = rng.next_below(100) as i64 + 1;
                if a.num_active() < 192 || a.get(&key).is_some() {
                    a.adjust_or_insert(key, v);
                    b.adjust_or_insert(key, v);
                }
            }
            let cstar = rng.next_below(60) as i64 + 1;
            let (removed_a, max_a) = a.purge_decrement(cstar);
            b.adjust_all(-cstar);
            let removed_b = b.retain_positive();
            assert_eq!(removed_a, removed_b, "round {round}");
            assert_eq!(
                max_a,
                b.max_value().unwrap_or(i64::MIN),
                "round {round}: surviving maximum"
            );
            a.check_invariants();
            let mut ca = pairs_of(&a);
            let mut cb = pairs_of(&b);
            ca.sort_unstable();
            cb.sort_unstable();
            assert_eq!(ca, cb, "round {round}");
        }
    }

    #[test]
    fn purge_decrement_handles_wrapping_runs() {
        let mut t: LpTable = LpTable::with_lg_len(4); // 16 slots
        let len = t.len();
        // Keys homing to the last two slots build a run wrapping 15 → 0.
        let mut picked = Vec::new();
        let mut candidate = 0u64;
        while picked.len() < 6 {
            let home = (candidate.hash64() as usize) & (len - 1);
            if home >= len - 2 {
                picked.push(candidate);
            }
            candidate += 1;
        }
        for (idx, &k) in picked.iter().enumerate() {
            t.adjust_or_insert(k, if idx % 2 == 0 { 1 } else { 10 });
        }
        let (removed, max_kept) = t.purge_decrement(1);
        assert_eq!(removed, 3);
        assert_eq!(max_kept, 9, "survivors are the 10s, decremented once");
        t.check_invariants();
        for (idx, k) in picked.iter().enumerate() {
            if idx % 2 == 0 {
                assert_eq!(t.get(k), None);
            } else {
                assert_eq!(t.get(k), Some(9));
            }
        }
    }

    #[test]
    fn scale_values_matches_reference_map() {
        // The fused scaling compaction must agree with an element-wise
        // reference (floor(v·num/den), drop zeros) on contents and keep
        // the structural invariants, across random fills and factors.
        let mut rng = Xoshiro256StarStar::from_seed(321);
        for round in 0..50u64 {
            let mut t: LpTable = LpTable::with_lg_len(8);
            let mut model: HashMap<u64, i64> = HashMap::new();
            let n = 1 + rng.next_below(192) as usize;
            for _ in 0..n {
                let key = rng.next_below(400);
                let v = rng.next_below(1000) as i64 + 1;
                if t.num_active() < 192 || t.get(&key).is_some() {
                    t.adjust_or_insert(key, v);
                    *model.entry(key).or_insert(0) += v;
                }
            }
            let den = rng.next_below(16) + 1;
            let num = rng.next_below(den + 1);
            let (removed, max_kept) = t.scale_values(num, den);
            t.check_invariants();
            let expect: HashMap<u64, i64> = model
                .iter()
                .filter_map(|(&k, &v)| {
                    let scaled = (v as u128 * num as u128 / den as u128) as i64;
                    (scaled > 0).then_some((k, scaled))
                })
                .collect();
            if num < den {
                assert_eq!(removed, model.len() - expect.len(), "round {round}");
                assert_eq!(
                    max_kept,
                    expect.values().copied().max().unwrap_or(i64::MIN),
                    "round {round}: surviving maximum"
                );
            }
            let got: HashMap<u64, i64> = t.iter().map(|(&k, v)| (k, v)).collect();
            assert_eq!(got, expect, "round {round} (x{num}/{den})");
        }
    }

    #[test]
    fn scale_values_identity_and_zero() {
        let mut t = table();
        for k in 0..40u64 {
            t.adjust_or_insert(k, (k + 1) as i64);
        }
        assert_eq!(t.scale_values(7, 7).0, 0, "identity never removes");
        assert_eq!(t.get(&10), Some(11));
        assert_eq!(t.scale_values(0, 3).0, 40, "zero factor clears all");
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn scale_values_handles_wrapping_runs() {
        let mut t: LpTable = LpTable::with_lg_len(4); // 16 slots
        let len = t.len();
        let mut picked = Vec::new();
        let mut candidate = 0u64;
        while picked.len() < 6 {
            let home = (candidate.hash64() as usize) & (len - 1);
            if home >= len - 2 {
                picked.push(candidate);
            }
            candidate += 1;
        }
        for (idx, &k) in picked.iter().enumerate() {
            // Alternate values that die (1 → 0) and survive (10 → 5).
            t.adjust_or_insert(k, if idx % 2 == 0 { 1 } else { 10 });
        }
        let (removed, max_kept) = t.scale_values(1, 2);
        assert_eq!(removed, 3);
        assert_eq!(max_kept, 5, "survivors are the 10s, halved");
        t.check_invariants();
        for (idx, k) in picked.iter().enumerate() {
            if idx % 2 == 0 {
                assert_eq!(t.get(k), None);
            } else {
                assert_eq!(t.get(k), Some(5));
            }
        }
    }

    #[test]
    #[should_panic(expected = "scales down")]
    fn scale_values_rejects_upscaling() {
        let mut t = table();
        t.adjust_or_insert(1, 1);
        t.scale_values(3, 2);
    }

    #[test]
    fn layout_fingerprint_sees_slot_moves() {
        let mut a = table();
        let mut b = table();
        for k in 0..50u64 {
            a.adjust_or_insert(k, 10);
            b.adjust_or_insert(k, 10);
        }
        assert_eq!(a.layout_fingerprint(), b.layout_fingerprint());
        b.adjust_or_insert(50, 1);
        assert_ne!(a.layout_fingerprint(), b.layout_fingerprint());
    }

    #[test]
    fn purge_decrement_all_and_none() {
        let mut t: LpTable = LpTable::with_lg_len(6);
        for k in 0..40u64 {
            t.adjust_or_insert(k, 5);
        }
        assert_eq!(t.purge_decrement(1).0, 0, "no counter at or below 1 dies");
        for k in 0..40u64 {
            assert_eq!(t.get(&k), Some(4));
        }
        assert_eq!(t.purge_decrement(10).0, 40, "everyone dies");
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn purge_everything() {
        let mut t = table();
        for k in 0..64u64 {
            t.adjust_or_insert(k, 1);
        }
        t.adjust_all(-1);
        assert_eq!(t.retain_positive(), 64);
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn reinsert_after_purge() {
        let mut t = table();
        for k in 0..64u64 {
            t.adjust_or_insert(k, 1);
        }
        t.adjust_all(-1);
        t.retain_positive();
        for k in 100..164u64 {
            t.adjust_or_insert(k, 2);
        }
        t.check_invariants();
        assert_eq!(t.num_active(), 64);
        for k in 100..164u64 {
            assert_eq!(t.get(&k), Some(2));
        }
    }

    #[test]
    fn iter_yields_every_active_pair() {
        let mut t = table();
        let mut expect = HashMap::new();
        for k in 0..150u64 {
            t.adjust_or_insert(k * 977, (k + 1) as i64);
            expect.insert(k * 977, (k + 1) as i64);
        }
        let got: HashMap<u64, i64> = t.iter().map(|(&k, v)| (k, v)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn iter_randomized_is_a_permutation_of_iter() {
        let mut t = table();
        for k in 0..150u64 {
            t.adjust_or_insert(k, (k + 1) as i64);
        }
        let mut rng = Xoshiro256StarStar::from_seed(99);
        let mut a: Vec<(u64, i64)> = t.iter_randomized(&mut rng).map(|(&k, v)| (k, v)).collect();
        let mut b = pairs_of(&t);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn iter_randomized_orders_differ_across_seeds() {
        let mut t = table();
        for k in 0..150u64 {
            t.adjust_or_insert(k, 1);
        }
        let mut r1 = Xoshiro256StarStar::from_seed(1);
        let mut r2 = Xoshiro256StarStar::from_seed(2);
        let a: Vec<u64> = t.iter_randomized(&mut r1).map(|(&k, _)| k).collect();
        let b: Vec<u64> = t.iter_randomized(&mut r2).map(|(&k, _)| k).collect();
        assert_ne!(a, b, "different seeds should visit in different orders");
    }

    #[test]
    fn values_into_collects_all() {
        let mut t = table();
        for k in 0..20u64 {
            t.adjust_or_insert(k, (k as i64 + 1) * 10);
        }
        let mut vals = Vec::new();
        t.values_into(&mut vals);
        vals.sort_unstable();
        let expect: Vec<i64> = (1..=20).map(|v| v * 10).collect();
        assert_eq!(vals, expect);
    }

    #[test]
    fn sample_values_copies_all_when_small() {
        let mut t = table();
        for k in 0..10u64 {
            t.adjust_or_insert(k, k as i64 + 1);
        }
        let mut rng = Xoshiro256StarStar::from_seed(5);
        let mut out = Vec::new();
        t.sample_values(&mut rng, 1024, &mut out);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn sample_values_draws_requested_count() {
        let mut t = table();
        for k in 0..192u64 {
            t.adjust_or_insert(k, k as i64 + 1);
        }
        let mut rng = Xoshiro256StarStar::from_seed(5);
        let mut out = Vec::new();
        t.sample_values(&mut rng, 64, &mut out);
        assert_eq!(out.len(), 64);
        // All samples are genuine counter values.
        for v in out {
            assert!((1..=192).contains(&v));
        }
    }

    #[test]
    fn min_value_finds_global_minimum() {
        let mut t = table();
        assert_eq!(t.min_value(), None);
        for k in 0..50u64 {
            t.adjust_or_insert(k, 100 - k as i64);
        }
        assert_eq!(t.min_value(), Some(51));
    }

    #[test]
    fn clear_resets() {
        let mut t = table();
        for k in 0..50u64 {
            t.adjust_or_insert(k, 1);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(&3), None);
        t.check_invariants();
    }

    #[test]
    fn memory_bytes_is_18_per_slot() {
        let t: LpTable = LpTable::with_lg_len(10);
        assert_eq!(t.memory_bytes(), 1024 * 18);
    }

    #[test]
    fn string_keys_purge_and_probe() {
        // The same machinery must work for by-value keys: build clusters,
        // purge through them, and verify lookups and invariants.
        let mut t: LpTable<String> = LpTable::with_lg_len(8);
        for i in 0..150u64 {
            t.adjust_or_insert(format!("key-{i}"), (i % 20 + 1) as i64);
        }
        t.check_invariants();
        let (removed, _) = t.purge_decrement(10);
        t.check_invariants();
        assert!(removed > 0, "some keys must die at c* = 10");
        for i in 0..150u64 {
            let key = format!("key-{i}");
            match t.get(&key) {
                Some(v) => assert_eq!(v, (i % 20 + 1) as i64 - 10, "{key}"),
                None => assert!(i % 20 < 10, "{key} should have survived"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "lg_len")]
    fn zero_lg_len_panics() {
        let _: LpTable = LpTable::with_lg_len(0);
    }

    /// Deletion stress: interleave inserts, purges and lookups, mirroring
    /// into a std HashMap, verifying invariants after every purge.
    #[test]
    fn model_based_stress() {
        let mut t: LpTable = LpTable::with_lg_len(10);
        let cap = t.len() * 3 / 4;
        let mut model: HashMap<u64, i64> = HashMap::new();
        let mut rng = Xoshiro256StarStar::from_seed(2024);
        for round in 0..2000u64 {
            let key = rng.next_below(600);
            let delta = (rng.next_below(100) + 1) as i64;
            if model.len() < cap || model.contains_key(&key) {
                t.adjust_or_insert(key, delta);
                *model.entry(key).or_insert(0) += delta;
            }
            if round % 97 == 96 {
                let dec = (rng.next_below(40) + 1) as i64;
                t.adjust_all(-dec);
                t.retain_positive();
                model = model
                    .into_iter()
                    .filter_map(|(k, v)| if v > dec { Some((k, v - dec)) } else { None })
                    .collect();
                t.check_invariants();
            }
        }
        let got: HashMap<u64, i64> = t.iter().map(|(&k, v)| (k, v)).collect();
        assert_eq!(got, model);
    }

    mod proptests {
        use super::super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        /// One step of the table workload: weighted upsert or a purge.
        #[derive(Clone, Debug)]
        enum Op {
            Upsert(u64, i64),
            Purge(i64),
        }

        fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
            proptest::collection::vec(
                prop_oneof![
                    8 => (0u64..400, 1i64..200).prop_map(|(k, v)| Op::Upsert(k, v)),
                    1 => (1i64..100).prop_map(Op::Purge),
                ],
                1..600,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The table behaves exactly like a reference map under any
            /// interleaving of upserts and purge sweeps, and its structural
            /// invariants survive every purge.
            #[test]
            fn equivalent_to_reference_map(ops in arb_ops()) {
                let mut table: LpTable = LpTable::with_lg_len(10);
                let cap = table.len() * 3 / 4;
                let mut model: HashMap<u64, i64> = HashMap::new();
                for op in ops {
                    match op {
                        Op::Upsert(key, delta) => {
                            if model.len() < cap || model.contains_key(&key) {
                                table.adjust_or_insert(key, delta);
                                *model.entry(key).or_insert(0) += delta;
                            }
                        }
                        Op::Purge(dec) => {
                            table.adjust_all(-dec);
                            let removed = table.retain_positive();
                            let before = model.len();
                            model = model
                                .into_iter()
                                .filter(|&(_, v)| v > dec)
                                .map(|(k, v)| (k, v - dec))
                                .collect();
                            prop_assert_eq!(removed, before - model.len());
                            table.check_invariants();
                        }
                    }
                }
                let got: HashMap<u64, i64> = table.iter().map(|(&k, v)| (k, v)).collect();
                prop_assert_eq!(got, model);
            }
        }
    }

    /// Wrap-around clusters: force keys whose home is near the end of the
    /// array by brute-force key search, then purge through the wrapped run.
    #[test]
    fn wrapping_run_purge() {
        let mut t: LpTable = LpTable::with_lg_len(4); // 16 slots
        let len = t.len();
        // Find keys hashing to the last two slots to build a wrapping run.
        let mut picked = Vec::new();
        let mut candidate = 0u64;
        while picked.len() < 6 {
            let home = (candidate.hash64() as usize) & (len - 1);
            if home >= len - 2 {
                picked.push(candidate);
            }
            candidate += 1;
        }
        for (idx, &k) in picked.iter().enumerate() {
            // Alternate doomed (1) and surviving (10) values.
            t.adjust_or_insert(k, if idx % 2 == 0 { 1 } else { 10 });
        }
        t.check_invariants();
        t.adjust_all(-1);
        let removed = t.retain_positive();
        assert_eq!(removed, 3);
        t.check_invariants();
        for (idx, k) in picked.iter().enumerate() {
            if idx % 2 == 0 {
                assert_eq!(t.get(k), None);
            } else {
                assert_eq!(t.get(k), Some(9));
            }
        }
    }

    /// Same-binary micro-benchmark of the two weighted ingest paths on
    /// an identical pre-filled table — the cleanest way to compare the
    /// direct kernel sweep against the prefetched sequential loop
    /// without cross-binary VM noise. Ignored by default; run with
    ///
    /// ```text
    /// cargo test --release -p streamfreq-core -- --ignored \
    ///     weighted_paths_bench --nocapture
    /// ```
    #[test]
    #[ignore = "manual micro-benchmark"]
    fn weighted_paths_bench() {
        const UPDATES: usize = 6_000_000;
        const DISTINCT: u64 = 2_500_000;
        let mut rng = 0x243F_6A88_85A3_08D3u64;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            rng >> 11
        };
        let mut base: LpTable = LpTable::with_lg_len(22);
        for k in 0..DISTINCT {
            base.adjust_or_insert(k, 1);
        }
        let stream: Vec<(u64, u64)> = (0..UPDATES).map(|_| (next() % DISTINCT, 1)).collect();
        for round in 0..3 {
            let mut a = base.clone();
            let t = std::time::Instant::now();
            let ra = a.adjust_or_insert_batch_weighted(&stream);
            let ta = t.elapsed().as_secs_f64();
            let mut b = base.clone();
            let t = std::time::Instant::now();
            let rb = b.upsert_batch_weighted_kernel(&stream);
            let tb = t.elapsed().as_secs_f64();
            assert_eq!(ra, rb);
            assert_eq!(a.layout_fingerprint(), b.layout_fingerprint());
            println!(
                "round {round}: legacy {:.0}/s  kernel {:.0}/s  ratio {:.3}",
                UPDATES as f64 / ta,
                UPDATES as f64 / tb,
                ta / tb
            );
        }
    }
}
