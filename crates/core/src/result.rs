//! Query result types: heavy-hitter rows and the false-positive /
//! false-negative reporting contract.

/// Which side of the approximation a heavy-hitter query must be exact on
/// (§1.2's (φ, ε) guarantee can be met from either side).
///
/// Because the sketch brackets every true frequency as
/// `lower_bound ≤ f ≤ upper_bound`, a threshold query can either
///
/// * return only items whose **lower** bound clears the threshold — every
///   returned item is genuinely frequent (*no false positives*), but an item
///   within the error band may be missed; or
/// * return all items whose **upper** bound clears the threshold — every
///   genuinely frequent item is returned (*no false negatives*), plus
///   possibly a few whose true frequency is within the error band below.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorType {
    /// Report `item` only if `lower_bound(item) > threshold`.
    NoFalsePositives,
    /// Report `item` if `upper_bound(item) > threshold`.
    NoFalseNegatives,
}

/// One reported heavy hitter: the item with its estimate and the two-sided
/// bounds the summary certifies (§2.3.1: `lower = c(i)`,
/// `upper = c(i) + offset`, `estimate = upper`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Row<T = u64> {
    /// The reported item.
    pub item: T,
    /// The sketch's estimate `f̂` of the item's weighted frequency.
    pub estimate: u64,
    /// Certified lower bound: `f ≥ lower_bound` always.
    pub lower_bound: u64,
    /// Certified upper bound: `f ≤ upper_bound` always.
    pub upper_bound: u64,
}

impl<T> Row<T> {
    /// Width of the certified interval (`upper_bound − lower_bound`).
    pub fn uncertainty(&self) -> u64 {
        self.upper_bound - self.lower_bound
    }
}

/// Sorts rows by descending estimate, breaking ties by descending lower
/// bound so output order is deterministic for items with equal estimates.
pub fn sort_rows_descending<T: Ord>(rows: &mut [Row<T>]) {
    rows.sort_by(|a, b| {
        b.estimate
            .cmp(&a.estimate)
            .then(b.lower_bound.cmp(&a.lower_bound))
            .then(a.item.cmp(&b.item))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(item: u64, est: u64, lb: u64) -> Row {
        Row {
            item,
            estimate: est,
            lower_bound: lb,
            upper_bound: est,
        }
    }

    #[test]
    fn uncertainty_is_bound_gap() {
        let r = Row {
            item: 1u64,
            estimate: 100,
            lower_bound: 90,
            upper_bound: 100,
        };
        assert_eq!(r.uncertainty(), 10);
    }

    #[test]
    fn sorting_is_by_estimate_then_lower_bound_then_item() {
        let mut rows = vec![
            row(3, 50, 40),
            row(1, 100, 90),
            row(2, 50, 45),
            row(4, 50, 45),
        ];
        sort_rows_descending(&mut rows);
        let order: Vec<u64> = rows.iter().map(|r| r.item).collect();
        assert_eq!(order, vec![1, 2, 4, 3]);
    }
}
