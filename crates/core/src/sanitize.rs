//! Lock/channel rank tracking for the `debug-invariants` sanitizer.
//!
//! The concurrent serving layer ([`crate::concurrent`]) and the group
//! commit WAL ([`crate::persist`]) share a small set of locks and
//! bounded channels whose acquisition order is a correctness contract:
//!
//! | rank | resource |
//! |-----:|----------|
//! | 10   | `publish_lock` (snapshot publication critical section) |
//! | 15   | `ckpt_requests` registry |
//! | 20   | shard channel sends (bounded `SyncSender`) |
//! | 30   | `CheckpointRound` state |
//! | 40   | `GroupCommitWal` staging queue |
//! | 50   | `GroupCommitWal` sink (the `WalWriter`) |
//! | 60   | the shared snapshot `RwLock` |
//!
//! Acquiring a resource whose rank is ≤ the highest rank currently held
//! on the same thread is an ordering inversion — the classic ingredient
//! of a deadlock that only fires under contention. With the
//! `debug-invariants` feature the tracker turns any inversion into a
//! deterministic panic naming both resources; without it every call
//! compiles to nothing, so call sites need no `cfg` guards.
//!
//! Blocking on a **bounded** channel send while holding a lock is the
//! same hazard in disguise (the drainer may need the held lock to make
//! room), so sends are checked with [`check_send`] against the same
//! rank order, just without pushing onto the stack.
//!
//! The tracker is per-thread: cross-thread deadlocks that involve no
//! per-thread ordering violation (true lock cycles across threads) are
//! out of scope — the rank discipline itself is what prevents those, as
//! long as every thread obeys it.

/// The rank order. Gaps are deliberate: new resources slot in without
/// renumbering.
pub mod rank {
    /// `concurrent::Shared::publish_lock`.
    pub const PUBLISH: u16 = 10;
    /// `concurrent::Shared::ckpt_requests`.
    pub const CKPT_REQUESTS: u16 = 15;
    /// Bounded shard-channel sends (`SyncSender<Msg>`).
    pub const SHARD_CHANNEL: u16 = 20;
    /// `persist::group::CheckpointRound` state mutex.
    pub const ROUND: u16 = 30;
    /// `persist::group::GroupCommitWal` staging-queue mutex.
    pub const WAL_QUEUE: u16 = 40;
    /// `persist::group::GroupCommitWal` sink mutex.
    pub const WAL_SINK: u16 = 50;
    /// `concurrent::Shared::snapshot` RwLock.
    pub const SNAPSHOT: u16 = 60;
}

#[cfg(feature = "debug-invariants")]
mod imp {
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<(u16, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    /// Proof of a tracked acquisition; dropping it releases the rank.
    /// Hold it exactly as long as the guarded lock's own guard — when a
    /// lock is released mid-scope, `drop` the rank guard at the same
    /// point or the tracker will report phantom inversions.
    #[must_use]
    pub struct RankGuard {
        rank: u16,
    }

    impl Drop for RankGuard {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(at) = held.iter().rposition(|&(r, _)| r == self.rank) {
                    held.remove(at);
                }
            });
        }
    }

    /// Records acquiring `label` at `rank`; panics on a rank inversion.
    pub fn rank_acquire(rank: u16, label: &'static str) -> RankGuard {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top, top_label)) = held.last() {
                assert!(
                    rank > top,
                    "debug-invariants: lock-order inversion — acquiring \
                     {label} (rank {rank}) while holding {top_label} \
                     (rank {top})"
                );
            }
            held.push((rank, label));
        });
        RankGuard { rank }
    }

    /// Checks a blocking send on `label` at `rank` against the held
    /// ranks without recording an acquisition.
    pub fn check_send(rank: u16, label: &'static str) {
        HELD.with(|held| {
            if let Some(&(top, top_label)) = held.borrow().last() {
                assert!(
                    rank > top,
                    "debug-invariants: channel-order inversion — blocking \
                     send on {label} (rank {rank}) while holding \
                     {top_label} (rank {top})"
                );
            }
        });
    }
}

#[cfg(not(feature = "debug-invariants"))]
mod imp {
    /// No-op stand-in; see the feature-gated twin.
    #[must_use]
    pub struct RankGuard;

    /// No-op stand-in; see the feature-gated twin.
    #[inline(always)]
    pub fn rank_acquire(_rank: u16, _label: &'static str) -> RankGuard {
        RankGuard
    }

    /// No-op stand-in; see the feature-gated twin.
    #[inline(always)]
    pub fn check_send(_rank: u16, _label: &'static str) {}
}

pub use imp::{check_send, rank_acquire, RankGuard};

#[cfg(all(test, feature = "debug-invariants"))]
mod tests {
    use super::*;

    #[test]
    fn in_order_acquisition_is_clean() {
        let _q = rank_acquire(rank::WAL_QUEUE, "queue");
        let _s = rank_acquire(rank::WAL_SINK, "sink");
        check_send(u16::MAX, "reply channel");
    }

    #[test]
    fn release_and_reacquire_is_clean() {
        // The writer_loop pattern: queue → sink, drop sink, re-lock queue.
        let q = rank_acquire(rank::WAL_QUEUE, "queue");
        let s = rank_acquire(rank::WAL_SINK, "sink");
        drop(s);
        drop(q);
        let _q = rank_acquire(rank::WAL_QUEUE, "queue");
    }

    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn inversion_panics_deterministically() {
        let _s = rank_acquire(rank::WAL_SINK, "sink");
        let _q = rank_acquire(rank::WAL_QUEUE, "queue");
    }

    #[test]
    #[should_panic(expected = "channel-order inversion")]
    fn blocking_send_under_higher_rank_panics() {
        let _s = rank_acquire(rank::WAL_SINK, "sink");
        check_send(rank::SHARD_CHANNEL, "shard channel");
    }
}
