//! Deterministic 64-bit hashing of sketch items.
//!
//! The linear-probing table (§2.3.3) needs a hash with good avalanche so
//! probe sequences stay short at a 3/4 load factor. We use the SplitMix64
//! finalizer for integer keys and an FNV-1a core with a SplitMix64 finalizer
//! for byte strings.
//!
//! Hashes are **deterministic and stable**: two sketches always agree on the
//! placement of the same item, and serialized sketches rehash identically
//! after deserialization on any platform. This is the property that makes
//! the merge-clustering caveat of §3.2 real (both summaries use the same
//! hash function), which the merge procedure counters by iterating the
//! source summary in randomized order; see [`crate::sketch::FreqSketch::merge`].

use core::hash::{Hash, Hasher};

use crate::rng::split_mix64_mix;

/// Items that can be hashed to a stable 64-bit value.
///
/// Implemented for the primitive integer types, `&str`, `String`, byte
/// slices, and — through a blanket-compatible helper [`hash64_of`] — any
/// `T: Hash` via the deterministic [`StableHasher`].
pub trait Hash64 {
    /// Returns the stable 64-bit hash of `self`.
    fn hash64(&self) -> u64;

    /// Reinterprets a slice of keys as raw `u64` words, if this key type
    /// *is* `u64`. The default implementation returns `None`; only the
    /// `u64` impl overrides it (returning the input slice unchanged).
    ///
    /// This is the type-safe specialization hook behind the ingest
    /// kernel's wide slot scan: when the counter table's key array is
    /// literally `Vec<u64>`, probe steps can compare several contiguous
    /// keys per iteration (unrolled or SIMD) without any `unsafe`
    /// transmute — for every other key type the kernel takes the generic
    /// one-key-per-step path.
    #[inline]
    fn keys_as_u64(_keys: &[Self]) -> Option<&[u64]>
    where
        Self: Sized,
    {
        None
    }
}

macro_rules! impl_hash64_int {
    ($($t:ty),*) => {
        $(impl Hash64 for $t {
            #[inline]
            fn hash64(&self) -> u64 {
                split_mix64_mix(*self as u64)
            }
        })*
    };
}

impl_hash64_int!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Hash64 for u64 {
    #[inline]
    fn hash64(&self) -> u64 {
        split_mix64_mix(*self)
    }

    #[inline]
    fn keys_as_u64(keys: &[Self]) -> Option<&[u64]> {
        Some(keys)
    }
}

impl Hash64 for u128 {
    #[inline]
    fn hash64(&self) -> u64 {
        split_mix64_mix((*self as u64) ^ split_mix64_mix((*self >> 64) as u64))
    }
}

impl Hash64 for [u8] {
    #[inline]
    fn hash64(&self) -> u64 {
        fnv1a_mix(self)
    }
}

impl Hash64 for &str {
    #[inline]
    fn hash64(&self) -> u64 {
        fnv1a_mix(self.as_bytes())
    }
}

impl Hash64 for String {
    #[inline]
    fn hash64(&self) -> u64 {
        fnv1a_mix(self.as_bytes())
    }
}

impl Hash64 for Vec<u8> {
    #[inline]
    fn hash64(&self) -> u64 {
        fnv1a_mix(self)
    }
}

impl<A: Hash64, B: Hash64> Hash64 for (A, B) {
    #[inline]
    fn hash64(&self) -> u64 {
        split_mix64_mix(
            self.0
                .hash64()
                .wrapping_add(self.1.hash64().rotate_left(32)),
        )
    }
}

/// FNV-1a over the bytes, then a SplitMix64 finalizer to repair FNV's weak
/// high bits (the table uses the *low* bits for indexing, but merge striding
/// and tests benefit from full-width avalanche).
#[inline]
pub fn fnv1a_mix(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    split_mix64_mix(h)
}

/// A deterministic `std::hash::Hasher` (FNV-1a core + SplitMix64 finalizer).
///
/// Unlike `std::collections::hash_map::DefaultHasher`, the output does not
/// depend on process-local random state, so sketches over arbitrary
/// `T: Hash` item types serialize and merge consistently across processes.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self {
            state: 0xCBF2_9CE4_8422_2325,
        }
    }
}

impl Hasher for StableHasher {
    #[inline]
    fn finish(&self) -> u64 {
        split_mix64_mix(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(PRIME);
        }
    }
}

/// Hashes any `T: Hash` deterministically with [`StableHasher`].
#[inline]
pub fn hash64_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = StableHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn integer_hashes_are_stable() {
        assert_eq!(42u64.hash64(), 42u64.hash64());
        assert_eq!(
            42u32.hash64(),
            42u64.hash64(),
            "same value, same width-extension"
        );
    }

    #[test]
    fn integer_hashes_spread_low_bits() {
        // Sequential keys must not collide in their low bits (the table
        // index bits) more than expected by chance.
        let mask = 1023u64;
        let mut buckets = vec![0u32; 1024];
        for i in 0..4096u64 {
            buckets[(i.hash64() & mask) as usize] += 1;
        }
        let max = buckets.iter().max().copied().unwrap();
        assert!(max <= 16, "low-bit clustering: max bucket {max}");
    }

    #[test]
    fn string_hash_matches_bytes_hash() {
        assert_eq!("hello".hash64(), b"hello"[..].hash64());
        assert_eq!(String::from("hello").hash64(), "hello".hash64());
    }

    #[test]
    fn distinct_strings_rarely_collide() {
        let mut seen = HashSet::new();
        for i in 0..50_000 {
            seen.insert(format!("item-{i}").hash64());
        }
        assert_eq!(seen.len(), 50_000);
    }

    #[test]
    fn stable_hasher_is_deterministic() {
        let a = hash64_of(&("composite", 17u64, vec![1u8, 2, 3]));
        let b = hash64_of(&("composite", 17u64, vec![1u8, 2, 3]));
        assert_eq!(a, b);
        let c = hash64_of(&("composite", 18u64, vec![1u8, 2, 3]));
        assert_ne!(a, c);
    }

    #[test]
    fn tuple_hash64_differs_by_order() {
        assert_ne!((1u64, 2u64).hash64(), (2u64, 1u64).hash64());
    }

    #[test]
    fn u128_hash_uses_both_halves() {
        let low_only = 0x1234_5678_9ABC_DEF0u128;
        let with_high = low_only | (1u128 << 100);
        assert_ne!(low_only.hash64(), with_high.hash64());
    }
}
