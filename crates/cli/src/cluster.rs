//! Cluster verbs: ingest routing, the merging query tier, and
//! WAL-shipped replication.
//!
//! A cluster is N ordinary `serve` processes started *without*
//! `--input` (wire-ingest nodes) plus a topology file
//! ([`streamfreq_core::cluster::Topology`], `SFTOPO v1`) that pins the
//! membership: node ids, addresses, vnode count, and an epoch that
//! every mutation strictly increases. All verbs here are *clients* of
//! those processes over the SFBP binary protocol — the cluster has no
//! coordinator; the topology file is the single source of routing
//! truth.
//!
//! * [`run_cluster_ingest`] — partitions a stream file over the
//!   consistent-hash ring and ships each node its slice in bounded
//!   `INGEST` batches, with bounded-retry connection establishment.
//! * [`run_cluster_query`] — fans `SNAP` out to every node, merges the
//!   per-node Algorithm-5 engines into one bank, and answers in the
//!   text protocol's shape plus per-node diagnostics. By Theorem 5 the
//!   merged bank's error band is certified: per-node offsets add,
//!   stream weights add.
//! * [`run_cluster_serve`] — a front node serving the text protocol
//!   from a periodically refreshed merged view.
//! * [`run_cluster_replicate`] — copies a durable node's store
//!   (checkpoint + WAL tail) over `REPL`/`FETCH` into a local replica
//!   directory that `serve --data-dir` recovers exactly.
//! * [`run_cluster_promote`] — rewrites a topology entry's address
//!   (epoch + 1). Ring placement keys on node *ids*, so promotion
//!   changes where a node's slice is served without moving any keys.
//!
//! Node responses are untrusted bytes: frame reads are length-capped
//! and all payload decoding goes through the defensive
//! [`streamfreq_core::cluster::wire`] codecs.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use streamfreq_core::cluster::wire::{self, MAX_INGEST_BATCH};
use streamfreq_core::cluster::Topology;
use streamfreq_core::persist::MAX_SHIP_CHUNK;
use streamfreq_core::{ErrorType, FreqSketch, PurgePolicy, SketchEngine};
use streamfreq_workloads::load_binary;

use crate::serve::{connect_with_retry, opcode, BINARY_MAGIC};
use crate::CliError;

/// Default `INGEST` batch size for `cluster-ingest`.
pub const DEFAULT_INGEST_BATCH: usize = 4096;

/// Cap on one response frame from a node. Snapshots of large banks are
/// the biggest legitimate payload; a hostile length beyond this is
/// rejected before allocation.
const MAX_RESPONSE_FRAME: usize = 64 << 20;

/// Configuration of one `cluster-ingest` run.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterIngestOptions {
    /// The topology file defining the ring.
    pub topology: PathBuf,
    /// Input stream file (16-byte `(item, weight)` records).
    pub input: PathBuf,
    /// Updates per `INGEST` frame.
    pub batch: usize,
    /// Connect/read/write timeout per node, in milliseconds.
    pub timeout_ms: u64,
    /// Extra connection attempts per node, with doubling backoff.
    pub retries: u32,
}

/// Configuration of one `cluster-query` run.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterQueryOptions {
    /// The topology file defining the membership.
    pub topology: PathBuf,
    /// Merged-bank counter budget (match the nodes' `-k`).
    pub k: usize,
    /// Merged-bank purge policy (match the nodes').
    pub policy: PurgePolicy,
    /// Merged-bank sampler seed (match the nodes').
    pub seed: u64,
    /// The query tokens (`EST item` | `TOPK n` | `HH phi [nfp|nfn]` |
    /// `STATS`).
    pub request: Vec<String>,
    /// Connect/read/write timeout per node, in milliseconds.
    pub timeout_ms: u64,
    /// Extra connection attempts per node, with doubling backoff.
    pub retries: u32,
}

/// Configuration of one `cluster-serve` front node.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterServeOptions {
    /// The topology file defining the membership.
    pub topology: PathBuf,
    /// Merged-bank counter budget (match the nodes' `-k`).
    pub k: usize,
    /// Merged-bank purge policy (match the nodes').
    pub policy: PurgePolicy,
    /// Merged-bank sampler seed (match the nodes').
    pub seed: u64,
    /// Loopback port to bind (0 = ephemeral, see `port_file`).
    pub port: u16,
    /// If set, the bound address is written here once listening.
    pub port_file: Option<PathBuf>,
    /// Minimum milliseconds between fan-out refreshes of the merged
    /// view (queries in between serve the cached merge).
    pub refresh_ms: u64,
    /// Connect/read/write timeout per node, in milliseconds.
    pub timeout_ms: u64,
    /// Extra connection attempts per node, with doubling backoff.
    pub retries: u32,
}

/// Configuration of one `cluster-replicate` run.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterReplicateOptions {
    /// Loopback port of the durable leader node.
    pub port: u16,
    /// Local replica directory (created if missing).
    pub dir: PathBuf,
    /// Request a `CKPT` round before shipping, so the replica starts
    /// from a fresh checkpoint and a short WAL tail.
    pub checkpoint: bool,
    /// Connect/read/write timeout, in milliseconds.
    pub timeout_ms: u64,
    /// Extra connection attempts, with doubling backoff.
    pub retries: u32,
}

/// Reads and parses a topology file.
///
/// # Errors
/// [`CliError::Io`] if unreadable, [`CliError::Sketch`] if malformed.
pub fn load_topology(path: &PathBuf) -> Result<Topology, CliError> {
    let bytes = std::fs::read(path).map_err(|e| CliError::Io(path.clone(), e))?;
    Topology::parse(&bytes).map_err(|e| CliError::Sketch(path.clone(), e))
}

/// One SFBP connection to a cluster node.
struct NodeConn {
    addr: String,
    stream: TcpStream,
}

impl NodeConn {
    /// Connects (with bounded retry) and sends the protocol magic.
    fn open(addr: &str, timeout_ms: u64, retries: u32) -> Result<NodeConn, CliError> {
        let net = |e: std::io::Error| CliError::Net(addr.to_string(), e);
        let socket_addr: SocketAddr =
            addr.to_socket_addrs().map_err(net)?.next().ok_or_else(|| {
                CliError::Net(
                    addr.to_string(),
                    std::io::Error::new(ErrorKind::InvalidInput, "address resolves to nothing"),
                )
            })?;
        let timeout = Duration::from_millis(timeout_ms.max(1));
        let mut stream = connect_with_retry(&socket_addr, timeout, retries).map_err(net)?;
        stream.write_all(BINARY_MAGIC).map_err(net)?;
        Ok(NodeConn {
            addr: addr.to_string(),
            stream,
        })
    }

    /// One request/response exchange. An `ERR` status becomes a
    /// [`CliError::Net`] carrying the server's message.
    fn request(&mut self, op: u8, payload: &[u8]) -> Result<Vec<u8>, CliError> {
        let net = |e: std::io::Error| CliError::Net(self.addr.clone(), e);
        let mut frame = Vec::with_capacity(payload.len() + 16);
        let body_len = u32::try_from(payload.len().saturating_add(1))
            .map_err(|_| CliError::Usage("request payload too large for one frame".into()))?;
        frame.extend_from_slice(&body_len.to_le_bytes());
        frame.push(op);
        frame.extend_from_slice(payload);
        self.stream.write_all(&frame).map_err(net)?;
        let (status, reply) = read_frame_capped(&mut self.stream).map_err(net)?;
        if status != 0 {
            return Err(CliError::Net(
                self.addr.clone(),
                std::io::Error::other(format!("node error: {}", String::from_utf8_lossy(&reply))),
            ));
        }
        Ok(reply)
    }
}

/// Reads one `[len u32le | status | payload]` response frame from an
/// untrusted node, rejecting hostile lengths before allocating.
fn read_frame_capped(reader: &mut impl Read) -> std::io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; 4];
    reader.read_exact(&mut header)?;
    let frame_len = usize::try_from(u32::from_le_bytes(header))
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidData, "frame length overflow"))?;
    if frame_len == 0 || frame_len > MAX_RESPONSE_FRAME {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("response frame length {frame_len} outside 1..={MAX_RESPONSE_FRAME}"),
        ));
    }
    let mut frame = vec![0u8; frame_len];
    reader.read_exact(&mut frame)?;
    let payload = frame.split_off(1);
    let status = frame.first().copied().ok_or_else(|| {
        std::io::Error::new(ErrorKind::InvalidData, "response frame missing status")
    })?;
    Ok((status, payload))
}

/// Routes a stream file's updates to their owning nodes over the ring
/// and ships them in bounded `INGEST` batches.
///
/// Retry policy: only *connection establishment* is retried (bounded,
/// doubling backoff). Once a node has acknowledged any batch, a
/// mid-stream failure aborts the whole run with an error rather than
/// re-sending — re-applying a batch would silently double-count
/// weight, which no error bound forgives.
///
/// # Errors
/// [`CliError`] on unreadable inputs or node failure.
pub fn run_cluster_ingest(opts: &ClusterIngestOptions) -> Result<String, CliError> {
    let topology = load_topology(&opts.topology)?;
    let stream = load_binary(&opts.input).map_err(|e| CliError::Io(opts.input.clone(), e))?;
    let batch_size = opts.batch.clamp(1, MAX_INGEST_BATCH);
    let ring = topology.ring();
    let nodes = topology.nodes();

    // Partition the whole stream first: routing is pure ring math.
    let mut slices: Vec<Vec<(u64, u64)>> = nodes.iter().map(|_| Vec::new()).collect();
    for &(item, weight) in &stream {
        let owner = ring.route(&item);
        if let Some(slice) = slices.get_mut(owner) {
            slice.push((item, weight));
        }
    }

    let started = Instant::now();
    let mut out = format!(
        "routing {} updates across {} nodes (topology epoch {}, {} vnodes/node)\n",
        stream.len(),
        nodes.len(),
        topology.epoch(),
        topology.vnodes()
    );
    let mut shipped_total: u64 = 0;
    for (spec, slice) in nodes.iter().zip(&slices) {
        let mut conn = NodeConn::open(&spec.addr, opts.timeout_ms, opts.retries)?;
        let weight: u64 = slice.iter().map(|&(_, w)| w).sum();
        let mut applied: u64 = 0;
        for chunk in slice.chunks(batch_size) {
            let reply = conn.request(opcode::INGEST, &wire::encode_ingest_batch(chunk))?;
            let Ok(raw) = <[u8; 8]>::try_from(reply.as_slice()) else {
                return Err(CliError::Net(
                    spec.addr.clone(),
                    std::io::Error::new(ErrorKind::InvalidData, "malformed INGEST ack"),
                ));
            };
            let acked = u64::from_le_bytes(raw);
            if acked != chunk.len() as u64 {
                return Err(CliError::Net(
                    spec.addr.clone(),
                    std::io::Error::other(format!(
                        "node acknowledged {acked} of {} updates",
                        chunk.len()
                    )),
                ));
            }
            applied += acked;
        }
        shipped_total += applied;
        out.push_str(&format!(
            "node {} {} updates={} weight={}\n",
            spec.id, spec.addr, applied, weight
        ));
    }
    out.push_str(&format!(
        "shipped {} updates in {:.3}s\n",
        shipped_total,
        started.elapsed().as_secs_f64()
    ));
    Ok(out)
}

/// What the query tier learned about one node during a fan-out.
struct NodeView {
    id: u64,
    addr: String,
    epoch: u64,
    sealed: bool,
    weight: u64,
}

/// Fans `SNAP` out to every node of `topology`, returning per-node
/// status and the decoded engines in topology node order (merge order
/// must be deterministic so merged banks are reproducible).
fn fan_out_snapshots(
    topology: &Topology,
    timeout_ms: u64,
    retries: u32,
) -> Result<(Vec<NodeView>, Vec<SketchEngine<u64>>), CliError> {
    let mut views = Vec::new();
    let mut engines = Vec::new();
    for spec in topology.nodes() {
        let mut conn = NodeConn::open(&spec.addr, timeout_ms, retries)?;
        let payload = conn.request(opcode::SNAP, &[])?;
        let snap = wire::decode_snapshot(&payload)
            .map_err(|e| CliError::Sketch(PathBuf::from(&spec.addr), e))?;
        views.push(NodeView {
            id: spec.id,
            addr: spec.addr.clone(),
            epoch: snap.epoch,
            sealed: snap.sealed,
            weight: snap.engine.stream_weight(),
        });
        engines.push(snap.engine);
    }
    Ok((views, engines))
}

/// Merges fanned-out engines into one bank with the given
/// configuration — the same recipe `recover` uses for a durable bank,
/// and exactly Algorithm 5: per-node offsets add, stream weights add.
fn merge_engines(
    k: usize,
    policy: PurgePolicy,
    seed: u64,
    engines: Vec<SketchEngine<u64>>,
) -> Result<FreqSketch, CliError> {
    let mut merged = FreqSketch::builder(k)
        .policy(policy)
        .seed(seed)
        .build()
        .map_err(|e| CliError::Sketch(PathBuf::from("<cluster-merge>"), e))?;
    for engine in engines {
        merged.merge(&FreqSketch::from(engine));
    }
    Ok(merged)
}

/// Formats one result row exactly like the text protocol.
fn merged_row(row: &streamfreq_core::Row<u64>) -> String {
    format!(
        "{} {} {} {}\n",
        row.item, row.estimate, row.lower_bound, row.upper_bound
    )
}

/// Answers one query against a merged bank in the text protocol's
/// shape (`OK ...`), so cluster answers and single-node answers are
/// comparable byte for byte.
fn answer_merged(merged: &FreqSketch, tokens: &[String], nodes: usize) -> Result<String, CliError> {
    let usage = |msg: &str| CliError::Usage(msg.into());
    let Some(command) = tokens.first() else {
        return Err(usage("empty cluster query"));
    };
    match command.to_ascii_uppercase().as_str() {
        "EST" => {
            let [_, item] = tokens else {
                return Err(usage("usage: EST <item>"));
            };
            let item: u64 = item.parse().map_err(|_| usage("bad EST item"))?;
            Ok(format!(
                "OK {} {} {}\n",
                merged.estimate(item),
                merged.lower_bound(item),
                merged.upper_bound(item)
            ))
        }
        "TOPK" => {
            let [_, n] = tokens else {
                return Err(usage("usage: TOPK <n>"));
            };
            let n: usize = n.parse().map_err(|_| usage("bad TOPK row count"))?;
            if n == 0 {
                return Err(usage("TOPK row count must be positive"));
            }
            let rows = merged.top_k(n);
            let mut reply = format!("OK {}\n", rows.len());
            for row in &rows {
                reply.push_str(&merged_row(row));
            }
            Ok(reply)
        }
        "HH" => {
            let (phi, contract) = match tokens {
                [_, phi] => (phi, ErrorType::NoFalseNegatives),
                [_, phi, c] if c == "nfp" => (phi, ErrorType::NoFalsePositives),
                [_, phi, c] if c == "nfn" => (phi, ErrorType::NoFalseNegatives),
                _ => return Err(usage("usage: HH <phi> [nfp|nfn]")),
            };
            let phi: f64 = phi.parse().map_err(|_| usage("bad HH phi"))?;
            if !(0.0..=1.0).contains(&phi) {
                return Err(usage("HH phi outside [0, 1]"));
            }
            let rows = merged.heavy_hitters(phi, contract);
            let mut reply = format!("OK {}\n", rows.len());
            for row in &rows {
                reply.push_str(&merged_row(row));
            }
            Ok(reply)
        }
        "STATS" => Ok(format!(
            "OK n={} counters={} max_error={} nodes={nodes}\n",
            merged.stream_weight(),
            merged.num_counters(),
            merged.maximum_error()
        )),
        other => Err(usage(&format!(
            "unknown cluster query `{other}` (EST | TOPK | HH | STATS)"
        ))),
    }
}

/// The per-node diagnostic block appended after a cluster answer.
fn cluster_diagnostics(merged: &FreqSketch, views: &[NodeView]) -> String {
    let epoch_min = views.iter().map(|v| v.epoch).min().unwrap_or(0);
    let epoch_max = views.iter().map(|v| v.epoch).max().unwrap_or(0);
    let sealed = views.iter().filter(|v| v.sealed).count();
    let mut out = format!(
        "cluster: nodes={} epoch_min={epoch_min} epoch_max={epoch_max} \
         n={} max_error={} sealed={sealed}/{}\n",
        views.len(),
        merged.stream_weight(),
        merged.maximum_error(),
        views.len()
    );
    for view in views {
        out.push_str(&format!(
            "node {} {} epoch={} n={} sealed={}\n",
            view.id,
            view.addr,
            view.epoch,
            view.weight,
            u8::from(view.sealed)
        ));
    }
    out
}

/// Fans one query out to the cluster, merges, and answers.
///
/// # Errors
/// [`CliError`] on topology, node, or query errors.
pub fn run_cluster_query(opts: &ClusterQueryOptions) -> Result<String, CliError> {
    let topology = load_topology(&opts.topology)?;
    let (views, engines) = fan_out_snapshots(&topology, opts.timeout_ms, opts.retries)?;
    let merged = merge_engines(opts.k, opts.policy, opts.seed, engines)?;
    let mut out = answer_merged(&merged, &opts.request, views.len())?;
    out.push_str(&cluster_diagnostics(&merged, &views));
    Ok(out)
}

/// Runs a front node: answers the text protocol from a merged view
/// refreshed by full fan-out at most every `refresh_ms` milliseconds.
/// `QUIT` stops the front node (never the ingest nodes).
///
/// # Errors
/// [`CliError`] on topology or socket failures. A node failing
/// *during* a refresh turns into `ERR` replies, not a front crash.
pub fn run_cluster_serve(opts: &ClusterServeOptions) -> Result<String, CliError> {
    let topology = load_topology(&opts.topology)?;
    let listener = TcpListener::bind(("127.0.0.1", opts.port))
        .map_err(|e| CliError::Net("127.0.0.1".into(), e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::Net("127.0.0.1".into(), e))?;
    if let Some(port_file) = &opts.port_file {
        std::fs::write(port_file, addr.to_string())
            .map_err(|e| CliError::Io(port_file.clone(), e))?;
    }
    let refresh = Duration::from_millis(opts.refresh_ms);
    let mut cached: Option<(Instant, FreqSketch, Vec<NodeView>)> = None;
    let mut queries: u64 = 0;
    let mut connections: u64 = 0;
    'accept: loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) => return Err(CliError::Net(addr.to_string(), e)),
        };
        connections += 1;
        // A client that connects and never sends must not wedge the
        // front node (the same hang class query-remote's timeout fixes).
        let _ = stream.set_read_timeout(Some(Duration::from_millis(opts.timeout_ms.max(1))));
        let mut reader = std::io::BufReader::new(match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        });
        let mut stream = stream;
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::BufRead::read_line(&mut reader, &mut line) {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) => break,
            }
            let tokens: Vec<String> = line.split_whitespace().map(String::from).collect();
            let command = tokens
                .first()
                .map(|c| c.to_ascii_uppercase())
                .unwrap_or_default();
            if command == "QUIT" {
                let _ = stream.write_all(b"OK bye\n");
                break 'accept;
            }
            queries += 1;
            let stale = cached
                .as_ref()
                .map(|(at, _, _)| at.elapsed() >= refresh)
                .unwrap_or(true);
            if stale {
                match fan_out_snapshots(&topology, opts.timeout_ms, opts.retries).and_then(
                    |(views, engines)| {
                        merge_engines(opts.k, opts.policy, opts.seed, engines)
                            .map(|merged| (views, merged))
                    },
                ) {
                    Ok((views, merged)) => cached = Some((Instant::now(), merged, views)),
                    Err(e) => {
                        let _ = stream.write_all(format!("ERR refresh failed: {e}\n").as_bytes());
                        continue;
                    }
                }
            }
            let Some((_, merged, views)) = cached.as_ref() else {
                let _ = stream.write_all(b"ERR no merged view\n");
                continue;
            };
            let reply = match answer_merged(merged, &tokens, views.len()) {
                Ok(reply) => reply,
                Err(e) => format!("ERR {e}\n"),
            };
            if stream.write_all(reply.as_bytes()).is_err() {
                break;
            }
        }
    }
    Ok(format!(
        "front node on {addr} served {queries} queries over {connections} connections\n"
    ))
}

/// Replicates a durable leader's store directory over the wire:
/// optionally `CKPT` first, then `REPL` for the manifest, then `FETCH`
/// loops until every listed file is a byte-exact local prefix copy.
/// Re-running is incremental: files already at their advertised length
/// are skipped, shorter local files fetch only the tail, and a local
/// file *longer* than advertised (leader checkpoint truncated its WAL)
/// is re-shipped from offset zero.
///
/// # Errors
/// [`CliError`] on node or filesystem failure.
pub fn run_cluster_replicate(opts: &ClusterReplicateOptions) -> Result<String, CliError> {
    let addr = format!("127.0.0.1:{}", opts.port);
    let mut conn = NodeConn::open(&addr, opts.timeout_ms, opts.retries)?;
    std::fs::create_dir_all(&opts.dir).map_err(|e| CliError::Io(opts.dir.clone(), e))?;
    let mut out = format!("replicating {addr} into {}\n", opts.dir.display());
    if opts.checkpoint {
        let reply = conn.request(opcode::CKPT, &[])?;
        let epoch = <[u8; 8]>::try_from(reply.as_slice())
            .map(u64::from_le_bytes)
            .unwrap_or(0);
        out.push_str(&format!("leader checkpointed at epoch {epoch}\n"));
    }
    let manifest_bytes = conn.request(opcode::REPL, &[])?;
    let manifest = wire::decode_file_list(&manifest_bytes)
        .map_err(|e| CliError::Sketch(PathBuf::from(&addr), e))?;
    let persist_err = |e| CliError::Persist(opts.dir.clone(), e);
    let mut copied_files = 0usize;
    let mut copied_bytes: u64 = 0;
    for (rel, advertised) in &manifest {
        let local_path = opts.dir.join(rel);
        let local_len = std::fs::metadata(&local_path).map(|m| m.len()).unwrap_or(0);
        let mut have = if local_len > *advertised {
            // The leader's file shrank (checkpoint truncation renamed a
            // new WAL generation): restart this file from scratch.
            streamfreq_core::persist::import_file_range(&opts.dir, rel, 0, &[])
                .map_err(persist_err)?;
            0
        } else {
            local_len
        };
        if have == *advertised {
            continue;
        }
        while have < *advertised {
            let reply = conn.request(opcode::FETCH, &wire::encode_fetch_request(have, rel))?;
            if reply.is_empty() {
                return Err(CliError::Net(
                    addr.clone(),
                    std::io::Error::other(format!(
                        "{rel}: leader stopped at {have} of {advertised} advertised bytes \
                         (truncated mid-ship; re-run cluster-replicate)"
                    )),
                ));
            }
            if reply.len() as u64 > MAX_SHIP_CHUNK {
                return Err(CliError::Net(
                    addr.clone(),
                    std::io::Error::new(ErrorKind::InvalidData, "oversized FETCH chunk"),
                ));
            }
            streamfreq_core::persist::import_file_range(&opts.dir, rel, have, &reply)
                .map_err(persist_err)?;
            have += reply.len() as u64;
            copied_bytes += reply.len() as u64;
        }
        copied_files += 1;
    }
    out.push_str(&format!(
        "manifest: {} files; copied {copied_files} ({copied_bytes} bytes)\n",
        manifest.len()
    ));
    Ok(out)
}

/// Rewrites one node's address in a topology file (epoch + 1) —
/// replica promotion. Routing is untouched: ring placement keys on the
/// node *id*, which the promoted replica inherits.
///
/// # Errors
/// [`CliError`] if the file is unreadable, malformed, or the id is not
/// a member.
pub fn run_cluster_promote(topology: &PathBuf, node: u64, addr: &str) -> Result<String, CliError> {
    let before = load_topology(topology)?;
    let after = before
        .with_node_addr(node, addr)
        .map_err(|e| CliError::Sketch(topology.clone(), e))?;
    std::fs::write(topology, after.encode()).map_err(|e| CliError::Io(topology.clone(), e))?;
    Ok(format!(
        "promoted node {node} to {addr}: topology epoch {} -> {}\n",
        before.epoch(),
        after.epoch()
    ))
}
