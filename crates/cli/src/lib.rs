//! Implementation of the `streamfreq` command-line tool: argument
//! parsing, command execution, and report formatting, factored into a
//! library so the test suite can drive it without spawning processes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

use std::fmt;
use std::path::{Path, PathBuf};

pub mod cluster;
pub mod serve;

use streamfreq_apps::WindowedStore;
use streamfreq_core::persist::checkpoint::checkpoint_info;
use streamfreq_core::persist::recover::{
    open_bank_existing, recover_bank_readonly, recover_engine_readonly,
};
use streamfreq_core::persist::store::{
    checkpoint_bank, read_manifest, read_store_meta, shard_dir, Manifest, StoreMeta,
};
use streamfreq_core::{
    DurabilityOptions, DurableSketch, ErrorType, FreqSketch, PurgePolicy, Row, ShardedSketch,
};
use streamfreq_workloads::{
    load_binary, load_timed_binary, materialize_drifting_zipf, save_binary, save_timed_binary,
    tick_runs, CaidaConfig, DriftConfig, SyntheticCaida,
};

/// Usage text for `streamfreq help`.
pub const USAGE: &str = "\
streamfreq — frequent-items sketching from the command line

USAGE:
  streamfreq build -k <counters> --input <stream.bin> --output <sketch.sk>
                   [--policy smed|smin|q<percent>|med|globalmin] [--seed N]
                   [--threads N] [--shards S]
  streamfreq info  <sketch.sk>
  streamfreq top   <sketch.sk> [-n <rows>]
  streamfreq query <sketch.sk> [<item> ...] [--top N]
  streamfreq heavy <sketch.sk> --phi <fraction> [--contract nfp|nfn]
  streamfreq merge <a.sk> <b.sk> [<c.sk> ...] --output <merged.sk>
  streamfreq synth --updates <n> --output <stream.bin> [--flows N] [--seed N]
  streamfreq window synth --updates <n> --output <stream.tbin>
                   [--epochs E] [--width W] [--seed N]
  streamfreq window build --width <time-units> -k <counters>
                   --input <stream.tbin> --output <store.wsk>
                   [--retention R] [--policy ...]
  streamfreq window query <store.wsk> --from <t0> --to <t1> [--top N]
  streamfreq serve -k <counters> [--input <stream.bin>] [--port P]
                   [--port-file PATH] [--threads T] [--shards S]
                   [--passes R] [--snapshot-ms M] [--policy ...] [--seed N]
                   [--data-dir DIR] [--fsync always|off|bytes:N]
                   [--checkpoint-ms M]
  streamfreq query-remote --port P [--binary] [--timeout-ms M]
                   [--retries R] <EST item | TOPK n
                   | HH phi [nfp|nfn] | STATS | CKPT | QUIT>
  streamfreq checkpoint --data-dir DIR
  streamfreq recover --data-dir DIR --output <sketch.sk>
  streamfreq cluster-ingest --topology <cluster.topo> --input <stream.bin>
                   [--batch N] [--timeout-ms M] [--retries R]
  streamfreq cluster-query --topology <cluster.topo> -k <counters>
                   [--policy ...] [--seed N] [--timeout-ms M] [--retries R]
                   <EST item | TOPK n | HH phi [nfp|nfn] | STATS>
  streamfreq cluster-serve --topology <cluster.topo> -k <counters>
                   [--port P] [--port-file PATH] [--refresh-ms M]
                   [--policy ...] [--seed N] [--timeout-ms M] [--retries R]
  streamfreq cluster-replicate --port P --dir <replica-dir>
                   [--no-checkpoint] [--timeout-ms M] [--retries R]
  streamfreq cluster-promote --topology <cluster.topo> --node ID
                   --addr HOST:PORT
  streamfreq help

FILES:
  stream.bin   16-byte little-endian (item u64, weight u64) records
  stream.tbin  24-byte little-endian (timestamp, item, weight) records
  sketch.sk    streamfreq-core versioned wire format
  store.wsk    windowed bucket store (one summary per time bucket)
  data dir     durable store: MANIFEST + ckpt-*.ck + wal-*.seg; served
               banks keep one shared wal at the top level plus STORE,
               with MANIFEST + checkpoints under shard-NNNN/

  `info` decodes any of: sketch files, checkpoint files, MANIFEST /
  STORE files, or a whole durable store directory.

MULTI-CORE BUILD:
  --threads N > 1 ingests through a hash-partitioned ShardedSketch bank
  (one shard group per thread, lock-free) and exports the Algorithm-5
  merged sketch of k counters. --shards S sets the bank width (default:
  the thread count); each shard gets k/S counters, so total counter
  state matches a plain -k build. The result is deterministic for a
  given --shards value, independent of --threads. The merged export's
  error band is the sum of the shard offsets (Theorem 5), typically
  wider than a single-threaded build's.

TEMPORAL STORES:
  window build ingests a timestamped stream into one summary per
  --width-sized time bucket (batched per tick through the engine's
  prefetching path) and persists the bucket store; --retention R keeps
  only the most recent R closed buckets (oldest evicted). window query
  merges exactly the buckets overlapping [--from, --to) via Algorithm 5
  and reports the merged summary.

SERVING:
  serve ingests the input stream --passes times from --threads writer
  threads into a ConcurrentSketch bank while answering a newline-
  delimited text protocol (EST item | TOPK n | HH phi [nfp|nfn] |
  STATS | CKPT | QUIT) on loopback TCP. Queries read immutable
  Algorithm-5 merged snapshots republished every --snapshot-ms
  milliseconds (default 50), so they never block ingestion and observe
  a bounded-staleness view with certified error bounds. --port 0 picks
  an ephemeral port; --port-file writes the bound address for scripts.
  QUIT drains ingestion (final sealed snapshot) and stops the server.
  The same port also speaks a pipelined length-prefixed binary protocol
  (connections opening with the 4-byte magic `SFBP`); both formats are
  served by one poll-based event loop. query-remote sends one protocol
  request and prints the response; --binary uses the framed protocol
  and prints the identical text rendering.

DURABILITY:
  serve --data-dir DIR write-ahead-logs every shard's ingest into one
  shared group-commit log (CRC-framed segments of stream-tagged
  delta/varint records, staged off-thread and coalesced into one write
  + fsync per flush window; fsync per --fsync: always | off | bytes:N,
  default bytes:8388608) and checkpoints shards in coordinated rounds —
  periodically with --checkpoint-ms, on the CKPT verb, and at graceful
  drain. Restarting against the same DIR recovers the state exactly:
  checkpoint + one shared-log replay routed by stream tag (torn tail
  records are CRC-detected and dropped), Algorithm-5 merge across
  shards. Stores written by older per-shard-WAL builds migrate onto the
  shared log on first open. STATS then also reports wal_bytes,
  last_checkpoint_epoch, fsync_policy, wal_flush_count,
  wal_group_commit_batches, and avg_frames_per_fsync.
  checkpoint compacts an offline store: recover, write a fresh
  checkpoint, truncate the WAL. recover exports a store's merged state
  as an ordinary sketch file.

CLUSTER MODE:
  A cluster is N `serve` processes started *without* --input (wire-
  ingest nodes) plus an epoch-versioned topology file (`SFTOPO v1`:
  node ids, addresses, vnode count) defining a consistent-hash ring.
  cluster-ingest routes a stream file's updates to their owning nodes
  in batches over the binary protocol, retrying failed connections
  with bounded backoff. cluster-query fans a snapshot request out to
  every node, merges the per-node Algorithm-5 summaries into one bank
  (same -k/--policy/--seed as the nodes), answers in the text
  protocol's shape, and appends per-node epochs plus the combined
  Theorem-5 error band (offsets add, N adds). cluster-serve is a front
  node answering the text protocol from a periodically refreshed
  merged view. cluster-replicate copies a durable node's store
  (checkpoint + WAL tail) over the wire into a local directory that
  `serve --data-dir` can recover — a replica in warm standby.
  cluster-promote rewrites a topology entry's address (epoch + 1), so
  routing is unchanged (identity is the node id) and a promoted
  replica takes over its failed leader's slot.
";

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Build a sketch from a stream file.
    Build {
        /// Counters `k`.
        k: usize,
        /// Purge policy.
        policy: PurgePolicy,
        /// Sampler seed.
        seed: u64,
        /// Ingestion threads (1 = plain single-sketch build).
        threads: usize,
        /// Shards in the bank when `threads > 1` (0 = match threads).
        shards: usize,
        /// Input stream path.
        input: PathBuf,
        /// Output sketch path.
        output: PathBuf,
    },
    /// Print summary statistics of a sketch file.
    Info(PathBuf),
    /// Print the top-n rows of a sketch file.
    Top {
        /// Sketch path.
        path: PathBuf,
        /// Number of rows.
        n: usize,
    },
    /// Point-query one or more items and/or report the top-k rows.
    Query {
        /// Sketch path.
        path: PathBuf,
        /// Items to query.
        items: Vec<u64>,
        /// If set, also print the `n` largest-estimate rows.
        top: Option<usize>,
    },
    /// Heavy hitters at a φ threshold.
    Heavy {
        /// Sketch path.
        path: PathBuf,
        /// The φ fraction of total weight.
        phi: f64,
        /// Reporting contract.
        error_type: ErrorType,
    },
    /// Merge sketch files into one.
    Merge {
        /// Input sketch paths (two or more).
        inputs: Vec<PathBuf>,
        /// Output path.
        output: PathBuf,
    },
    /// Generate a synthetic CAIDA-like stream file.
    Synth {
        /// Number of updates.
        updates: usize,
        /// Number of flows (0 = scaled default).
        flows: u64,
        /// Seed.
        seed: u64,
        /// Output path.
        output: PathBuf,
    },
    /// Generate a timestamped drifting-hot-set stream file.
    WindowSynth {
        /// Number of updates.
        updates: usize,
        /// Number of epochs the stream spans.
        epochs: u64,
        /// Time units per epoch (the natural `window build --width`).
        width: u64,
        /// Seed.
        seed: u64,
        /// Output path.
        output: PathBuf,
    },
    /// Build a windowed bucket store from a timestamped stream file.
    WindowBuild {
        /// Bucket width in time units.
        width: u64,
        /// Counters `k` per bucket summary.
        k: usize,
        /// Purge policy for every bucket.
        policy: PurgePolicy,
        /// Closed buckets retained (0 = unbounded).
        retention: usize,
        /// Input timestamped stream path.
        input: PathBuf,
        /// Output store path.
        output: PathBuf,
    },
    /// Serve queries over loopback TCP while ingesting a stream file.
    Serve(serve::ServeOptions),
    /// Compact an offline durable store: recover, checkpoint, truncate.
    Checkpoint {
        /// The store directory.
        data_dir: PathBuf,
    },
    /// Export a durable store's merged state as an ordinary sketch file.
    Recover {
        /// The store directory.
        data_dir: PathBuf,
        /// Output sketch path.
        output: PathBuf,
    },
    /// Send one protocol request to a running `serve` instance.
    QueryRemote {
        /// Loopback port the server listens on.
        port: u16,
        /// The protocol request tokens (e.g. `["EST", "42"]`).
        request: Vec<String>,
        /// Speak the framed `SFBP` binary protocol instead of newline
        /// text (the reply prints identically either way).
        binary: bool,
        /// Connect/read/write timeout in milliseconds (0 = block
        /// forever, the historical behavior).
        timeout_ms: u64,
        /// Extra connection attempts on failure, with doubling backoff.
        retries: u32,
    },
    /// Route a stream file's updates to their owning cluster nodes.
    ClusterIngest(cluster::ClusterIngestOptions),
    /// Fan one query out to every cluster node and merge the answers.
    ClusterQuery(cluster::ClusterQueryOptions),
    /// Front node: serve merged cluster answers over the text protocol.
    ClusterServe(cluster::ClusterServeOptions),
    /// Copy a durable node's store (checkpoint + WAL tail) over the
    /// wire into a local replica directory.
    ClusterReplicate(cluster::ClusterReplicateOptions),
    /// Rewrite a topology entry's address (replica promotion).
    ClusterPromote {
        /// The topology file to rewrite in place.
        topology: PathBuf,
        /// Id of the node being re-addressed.
        node: u64,
        /// The replacement address (`HOST:PORT`).
        addr: String,
    },
    /// Range-merge query over a windowed bucket store.
    WindowQuery {
        /// Store path.
        path: PathBuf,
        /// Range start (inclusive).
        from: u64,
        /// Range end (exclusive).
        to: u64,
        /// Rows of the merged summary to print.
        top: usize,
    },
    /// Print usage.
    Help,
}

/// Errors surfaced to the user.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// Filesystem failure on a path.
    Io(PathBuf, std::io::Error),
    /// Malformed sketch file.
    Sketch(PathBuf, streamfreq_core::Error),
    /// Socket failure against an address.
    Net(String, std::io::Error),
    /// Durable-store failure against a data directory.
    Persist(PathBuf, streamfreq_core::PersistError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            CliError::Sketch(path, e) => write!(f, "{}: {e}", path.display()),
            CliError::Net(addr, e) => write!(f, "{addr}: {e}"),
            // PersistError carries its own path context.
            CliError::Persist(_, e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_policy(s: &str) -> Result<PurgePolicy, CliError> {
    match s {
        "smed" => Ok(PurgePolicy::smed()),
        "smin" => Ok(PurgePolicy::smin()),
        "med" => Ok(PurgePolicy::med()),
        "globalmin" => Ok(PurgePolicy::GlobalMin),
        other => {
            if let Some(pct) = other.strip_prefix('q') {
                let pct: f64 = pct
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad quantile `{other}`")))?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err(CliError::Usage(format!("quantile {pct} outside 0..=100")));
                }
                Ok(PurgePolicy::sample_quantile(pct / 100.0))
            } else {
                Err(CliError::Usage(format!("unknown policy `{other}`")))
            }
        }
    }
}

fn required<'a>(args: &'a [String], flag: &str, cmd: &str) -> Result<&'a str, CliError> {
    flag_value(args, flag).ok_or_else(|| CliError::Usage(format!("{cmd} requires {flag}")))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, CliError> {
    s.parse()
        .map_err(|_| CliError::Usage(format!("bad {what} `{s}`")))
}

/// The shared `--timeout-ms` / `--retries` pair of the cluster verbs.
/// Cluster clients default to a couple of retries: a node restarting
/// under promotion is expected, not exceptional.
fn cluster_net_flags(rest: &[String]) -> Result<(u64, u32), CliError> {
    let timeout_ms = match flag_value(rest, "--timeout-ms") {
        Some(s) => parse_u64(s, "timeout")?,
        None => serve::DEFAULT_REMOTE_TIMEOUT_MS,
    };
    let retries = match flag_value(rest, "--retries") {
        Some(s) => u32::try_from(parse_u64(s, "retry count")?)
            .map_err(|_| CliError::Usage("retry count too large".into()))?,
        None => 2,
    };
    Ok((timeout_ms, retries))
}

/// Parses a command line (without the program name).
///
/// # Errors
/// Returns [`CliError::Usage`] describing the first problem found.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "build" => {
            let k = parse_u64(required(rest, "-k", "build")?, "counter count")? as usize;
            let input = PathBuf::from(required(rest, "--input", "build")?);
            let output = PathBuf::from(required(rest, "--output", "build")?);
            let policy = match flag_value(rest, "--policy") {
                Some(p) => parse_policy(p)?,
                None => PurgePolicy::smed(),
            };
            let seed = match flag_value(rest, "--seed") {
                Some(s) => parse_u64(s, "seed")?,
                None => streamfreq_core::sketch::DEFAULT_SEED,
            };
            let threads = match flag_value(rest, "--threads") {
                Some(s) => {
                    let t = parse_u64(s, "thread count")? as usize;
                    if t == 0 {
                        return Err(CliError::Usage("--threads must be positive".into()));
                    }
                    t
                }
                None => 1,
            };
            let shards = match flag_value(rest, "--shards") {
                Some(s) => {
                    let n = parse_u64(s, "shard count")? as usize;
                    if n == 0 {
                        return Err(CliError::Usage("--shards must be positive".into()));
                    }
                    n
                }
                None => 0,
            };
            Ok(Command::Build {
                k,
                policy,
                seed,
                threads,
                shards,
                input,
                output,
            })
        }
        "info" => {
            let path = rest
                .first()
                .ok_or_else(|| CliError::Usage("info requires a sketch path".into()))?;
            Ok(Command::Info(PathBuf::from(path)))
        }
        "top" => {
            let path = rest
                .first()
                .filter(|p| !p.starts_with('-'))
                .ok_or_else(|| CliError::Usage("top requires a sketch path".into()))?;
            let n = match flag_value(rest, "-n") {
                Some(s) => parse_u64(s, "row count")? as usize,
                None => 10,
            };
            Ok(Command::Top {
                path: PathBuf::from(path),
                n,
            })
        }
        "query" => {
            let path = rest
                .first()
                .filter(|p| !p.starts_with('-'))
                .ok_or_else(|| CliError::Usage("query requires a sketch path".into()))?;
            // One pass over the arguments: `--top N` pairs and item
            // queries share the argument list, so parsing them together
            // keeps every token accounted for (a repeated --top is an
            // error, not a silently dropped argument).
            let mut top: Option<usize> = None;
            let mut items = Vec::new();
            let mut iter = rest[1..].iter();
            while let Some(arg) = iter.next() {
                if arg == "--top" {
                    if top.is_some() {
                        return Err(CliError::Usage("--top given more than once".into()));
                    }
                    let value = iter
                        .next()
                        .ok_or_else(|| CliError::Usage("--top requires a row count".into()))?;
                    let n = parse_u64(value, "row count")? as usize;
                    if n == 0 {
                        return Err(CliError::Usage("--top must be positive".into()));
                    }
                    top = Some(n);
                    continue;
                }
                items.push(parse_u64(arg, "item")?);
            }
            if items.is_empty() && top.is_none() {
                return Err(CliError::Usage(
                    "query requires at least one item or --top N".into(),
                ));
            }
            Ok(Command::Query {
                path: PathBuf::from(path),
                items,
                top,
            })
        }
        "heavy" => {
            let path = rest
                .first()
                .filter(|p| !p.starts_with('-'))
                .ok_or_else(|| CliError::Usage("heavy requires a sketch path".into()))?;
            let phi: f64 = required(rest, "--phi", "heavy")?
                .parse()
                .map_err(|_| CliError::Usage("bad --phi value".into()))?;
            if !(0.0..=1.0).contains(&phi) {
                return Err(CliError::Usage(format!("phi {phi} outside [0, 1]")));
            }
            let error_type = match flag_value(rest, "--contract") {
                None | Some("nfn") => ErrorType::NoFalseNegatives,
                Some("nfp") => ErrorType::NoFalsePositives,
                Some(other) => {
                    return Err(CliError::Usage(format!(
                        "unknown contract `{other}` (want nfp|nfn)"
                    )))
                }
            };
            Ok(Command::Heavy {
                path: PathBuf::from(path),
                phi,
                error_type,
            })
        }
        "merge" => {
            let output = PathBuf::from(required(rest, "--output", "merge")?);
            let inputs: Vec<PathBuf> = rest
                .iter()
                .take_while(|a| *a != "--output")
                .map(PathBuf::from)
                .collect();
            if inputs.len() < 2 {
                return Err(CliError::Usage(
                    "merge requires at least two sketches".into(),
                ));
            }
            Ok(Command::Merge { inputs, output })
        }
        "synth" => {
            let updates =
                parse_u64(required(rest, "--updates", "synth")?, "update count")? as usize;
            let output = PathBuf::from(required(rest, "--output", "synth")?);
            let flows = match flag_value(rest, "--flows") {
                Some(s) => parse_u64(s, "flow count")?,
                None => 0,
            };
            let seed = match flag_value(rest, "--seed") {
                Some(s) => parse_u64(s, "seed")?,
                None => 0xCA1DA,
            };
            Ok(Command::Synth {
                updates,
                flows,
                seed,
                output,
            })
        }
        "serve" => {
            let k = parse_u64(required(rest, "-k", "serve")?, "counter count")? as usize;
            let input = flag_value(rest, "--input").map(PathBuf::from);
            let port = match flag_value(rest, "--port") {
                Some(s) => {
                    let p = parse_u64(s, "port")?;
                    u16::try_from(p).map_err(|_| CliError::Usage(format!("port {p} > 65535")))?
                }
                None => 0,
            };
            let port_file = flag_value(rest, "--port-file").map(PathBuf::from);
            let policy = match flag_value(rest, "--policy") {
                Some(p) => parse_policy(p)?,
                None => PurgePolicy::smed(),
            };
            let seed = match flag_value(rest, "--seed") {
                Some(s) => parse_u64(s, "seed")?,
                None => streamfreq_core::sketch::DEFAULT_SEED,
            };
            let threads = match flag_value(rest, "--threads") {
                Some(s) => {
                    let t = parse_u64(s, "thread count")? as usize;
                    if t == 0 {
                        return Err(CliError::Usage("--threads must be positive".into()));
                    }
                    t
                }
                None => 1,
            };
            let shards = match flag_value(rest, "--shards") {
                Some(s) => {
                    let n = parse_u64(s, "shard count")? as usize;
                    if n == 0 {
                        return Err(CliError::Usage("--shards must be positive".into()));
                    }
                    n
                }
                None => 0,
            };
            let passes = match flag_value(rest, "--passes") {
                Some(s) => {
                    let r = parse_u64(s, "pass count")?;
                    if r == 0 {
                        return Err(CliError::Usage("--passes must be positive".into()));
                    }
                    r
                }
                None => 1,
            };
            let snapshot_ms = match flag_value(rest, "--snapshot-ms") {
                Some(s) => parse_u64(s, "snapshot interval")?,
                None => 50,
            };
            let data_dir = flag_value(rest, "--data-dir").map(PathBuf::from);
            let fsync = match flag_value(rest, "--fsync") {
                Some(s) => {
                    if data_dir.is_none() {
                        return Err(CliError::Usage("--fsync requires --data-dir".into()));
                    }
                    streamfreq_core::FsyncPolicy::parse(s).map_err(CliError::Usage)?
                }
                None => streamfreq_core::FsyncPolicy::default(),
            };
            let checkpoint_ms = match flag_value(rest, "--checkpoint-ms") {
                Some(s) => {
                    if data_dir.is_none() {
                        return Err(CliError::Usage(
                            "--checkpoint-ms requires --data-dir".into(),
                        ));
                    }
                    parse_u64(s, "checkpoint interval")?
                }
                None => 0,
            };
            Ok(Command::Serve(serve::ServeOptions {
                port,
                port_file,
                k,
                policy,
                seed,
                threads,
                shards,
                passes,
                snapshot_ms,
                input,
                data_dir,
                fsync,
                checkpoint_ms,
            }))
        }
        "checkpoint" => {
            let data_dir = PathBuf::from(required(rest, "--data-dir", "checkpoint")?);
            Ok(Command::Checkpoint { data_dir })
        }
        "recover" => {
            let data_dir = PathBuf::from(required(rest, "--data-dir", "recover")?);
            let output = PathBuf::from(required(rest, "--output", "recover")?);
            Ok(Command::Recover { data_dir, output })
        }
        "query-remote" => {
            let port_value = required(rest, "--port", "query-remote")?;
            let port = {
                let p = parse_u64(port_value, "port")?;
                u16::try_from(p).map_err(|_| CliError::Usage(format!("port {p} > 65535")))?
            };
            let timeout_ms = match flag_value(rest, "--timeout-ms") {
                Some(s) => parse_u64(s, "timeout")?,
                None => serve::DEFAULT_REMOTE_TIMEOUT_MS,
            };
            let retries = match flag_value(rest, "--retries") {
                Some(s) => u32::try_from(parse_u64(s, "retry count")?)
                    .map_err(|_| CliError::Usage("retry count too large".into()))?,
                None => 0,
            };
            // Everything except the flag pairs and --binary is the
            // protocol request.
            let mut request = Vec::new();
            let mut binary = false;
            let mut iter = rest.iter();
            while let Some(arg) = iter.next() {
                if arg == "--port" || arg == "--timeout-ms" || arg == "--retries" {
                    iter.next();
                    continue;
                }
                if arg == "--binary" {
                    binary = true;
                    continue;
                }
                request.push(arg.clone());
            }
            if request.is_empty() {
                return Err(CliError::Usage(
                    "query-remote requires a request (EST item | TOPK n | HH phi | STATS | QUIT)"
                        .into(),
                ));
            }
            Ok(Command::QueryRemote {
                port,
                request,
                binary,
                timeout_ms,
                retries,
            })
        }
        "cluster-ingest" => {
            let topology = PathBuf::from(required(rest, "--topology", "cluster-ingest")?);
            let input = PathBuf::from(required(rest, "--input", "cluster-ingest")?);
            let batch = match flag_value(rest, "--batch") {
                Some(s) => {
                    let b = parse_u64(s, "batch size")? as usize;
                    if b == 0 {
                        return Err(CliError::Usage("--batch must be positive".into()));
                    }
                    b
                }
                None => cluster::DEFAULT_INGEST_BATCH,
            };
            let (timeout_ms, retries) = cluster_net_flags(rest)?;
            Ok(Command::ClusterIngest(cluster::ClusterIngestOptions {
                topology,
                input,
                batch,
                timeout_ms,
                retries,
            }))
        }
        "cluster-query" => {
            let topology = PathBuf::from(required(rest, "--topology", "cluster-query")?);
            let k = parse_u64(required(rest, "-k", "cluster-query")?, "counter count")? as usize;
            let policy = match flag_value(rest, "--policy") {
                Some(p) => parse_policy(p)?,
                None => PurgePolicy::smed(),
            };
            let seed = match flag_value(rest, "--seed") {
                Some(s) => parse_u64(s, "seed")?,
                None => streamfreq_core::sketch::DEFAULT_SEED,
            };
            let (timeout_ms, retries) = cluster_net_flags(rest)?;
            // Everything not consumed by a flag pair is the query.
            let flags_with_value = [
                "--topology",
                "-k",
                "--policy",
                "--seed",
                "--timeout-ms",
                "--retries",
            ];
            let mut request = Vec::new();
            let mut iter = rest.iter();
            while let Some(arg) = iter.next() {
                if flags_with_value.contains(&arg.as_str()) {
                    iter.next();
                    continue;
                }
                request.push(arg.clone());
            }
            if request.is_empty() {
                return Err(CliError::Usage(
                    "cluster-query requires a request (EST item | TOPK n | HH phi | STATS)".into(),
                ));
            }
            Ok(Command::ClusterQuery(cluster::ClusterQueryOptions {
                topology,
                k,
                policy,
                seed,
                request,
                timeout_ms,
                retries,
            }))
        }
        "cluster-serve" => {
            let topology = PathBuf::from(required(rest, "--topology", "cluster-serve")?);
            let k = parse_u64(required(rest, "-k", "cluster-serve")?, "counter count")? as usize;
            let policy = match flag_value(rest, "--policy") {
                Some(p) => parse_policy(p)?,
                None => PurgePolicy::smed(),
            };
            let seed = match flag_value(rest, "--seed") {
                Some(s) => parse_u64(s, "seed")?,
                None => streamfreq_core::sketch::DEFAULT_SEED,
            };
            let port = match flag_value(rest, "--port") {
                Some(s) => {
                    let p = parse_u64(s, "port")?;
                    u16::try_from(p).map_err(|_| CliError::Usage(format!("port {p} > 65535")))?
                }
                None => 0,
            };
            let port_file = flag_value(rest, "--port-file").map(PathBuf::from);
            let refresh_ms = match flag_value(rest, "--refresh-ms") {
                Some(s) => parse_u64(s, "refresh interval")?,
                None => 100,
            };
            let (timeout_ms, retries) = cluster_net_flags(rest)?;
            Ok(Command::ClusterServe(cluster::ClusterServeOptions {
                topology,
                k,
                policy,
                seed,
                port,
                port_file,
                refresh_ms,
                timeout_ms,
                retries,
            }))
        }
        "cluster-replicate" => {
            let port_value = required(rest, "--port", "cluster-replicate")?;
            let port = {
                let p = parse_u64(port_value, "port")?;
                u16::try_from(p).map_err(|_| CliError::Usage(format!("port {p} > 65535")))?
            };
            let dir = PathBuf::from(required(rest, "--dir", "cluster-replicate")?);
            let checkpoint = !rest.iter().any(|a| a == "--no-checkpoint");
            let (timeout_ms, retries) = cluster_net_flags(rest)?;
            Ok(Command::ClusterReplicate(
                cluster::ClusterReplicateOptions {
                    port,
                    dir,
                    checkpoint,
                    timeout_ms,
                    retries,
                },
            ))
        }
        "cluster-promote" => {
            let topology = PathBuf::from(required(rest, "--topology", "cluster-promote")?);
            let node = parse_u64(required(rest, "--node", "cluster-promote")?, "node id")?;
            let addr = required(rest, "--addr", "cluster-promote")?.to_string();
            Ok(Command::ClusterPromote {
                topology,
                node,
                addr,
            })
        }
        "window" => {
            let Some(sub) = rest.first() else {
                return Err(CliError::Usage(
                    "window requires a subcommand (synth|build|query)".into(),
                ));
            };
            let rest = &rest[1..];
            match sub.as_str() {
                "synth" => {
                    let updates =
                        parse_u64(required(rest, "--updates", "window synth")?, "count")? as usize;
                    let output = PathBuf::from(required(rest, "--output", "window synth")?);
                    let epochs = match flag_value(rest, "--epochs") {
                        Some(s) => {
                            let e = parse_u64(s, "epoch count")?;
                            if e == 0 {
                                return Err(CliError::Usage("--epochs must be positive".into()));
                            }
                            e
                        }
                        None => 16,
                    };
                    let width = match flag_value(rest, "--width") {
                        Some(s) => {
                            let w = parse_u64(s, "width")?;
                            if w == 0 {
                                return Err(CliError::Usage("--width must be positive".into()));
                            }
                            w
                        }
                        None => 1_000,
                    };
                    let seed = match flag_value(rest, "--seed") {
                        Some(s) => parse_u64(s, "seed")?,
                        None => 0x7E4D0,
                    };
                    Ok(Command::WindowSynth {
                        updates,
                        epochs,
                        width,
                        seed,
                        output,
                    })
                }
                "build" => {
                    let width = parse_u64(required(rest, "--width", "window build")?, "width")?;
                    if width == 0 {
                        return Err(CliError::Usage("--width must be positive".into()));
                    }
                    let k =
                        parse_u64(required(rest, "-k", "window build")?, "counter count")? as usize;
                    let input = PathBuf::from(required(rest, "--input", "window build")?);
                    let output = PathBuf::from(required(rest, "--output", "window build")?);
                    let policy = match flag_value(rest, "--policy") {
                        Some(p) => parse_policy(p)?,
                        None => PurgePolicy::smed(),
                    };
                    let retention = match flag_value(rest, "--retention") {
                        Some(s) => {
                            let r = parse_u64(s, "retention")? as usize;
                            if r == 0 {
                                return Err(CliError::Usage(
                                    "--retention must be positive (omit it for unbounded)".into(),
                                ));
                            }
                            r
                        }
                        None => 0,
                    };
                    Ok(Command::WindowBuild {
                        width,
                        k,
                        policy,
                        retention,
                        input,
                        output,
                    })
                }
                "query" => {
                    let path = rest
                        .first()
                        .filter(|p| !p.starts_with('-'))
                        .ok_or_else(|| {
                            CliError::Usage("window query requires a store path".into())
                        })?;
                    let from = parse_u64(required(rest, "--from", "window query")?, "--from")?;
                    let to = parse_u64(required(rest, "--to", "window query")?, "--to")?;
                    if to <= from {
                        return Err(CliError::Usage(format!(
                            "empty range: --to {to} must exceed --from {from}"
                        )));
                    }
                    let top = match flag_value(rest, "--top") {
                        Some(s) => parse_u64(s, "row count")? as usize,
                        None => 10,
                    };
                    Ok(Command::WindowQuery {
                        path: PathBuf::from(path),
                        from,
                        to,
                        top,
                    })
                }
                other => Err(CliError::Usage(format!(
                    "unknown window subcommand `{other}` (want synth|build|query)"
                ))),
            }
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Formats a header plus `rows` as the aligned table used by `top`,
/// `query --top`, and `window query`.
fn format_rows<T: std::fmt::Display>(rows: &[Row<T>]) -> String {
    let mut out = format!(
        "{:>20} {:>16} {:>16} {:>16}\n",
        "item", "estimate", "lower", "upper"
    );
    for row in rows {
        out.push_str(&format!(
            "{:>20} {:>16} {:>16} {:>16}\n",
            row.item, row.estimate, row.lower_bound, row.upper_bound
        ));
    }
    out
}

/// Saturation marker appended to `info` rows.
fn saturated_marker(saturated: bool) -> &'static str {
    if saturated {
        " (saturated)"
    } else {
        ""
    }
}

/// `streamfreq info`: decode whatever the path holds — a sketch file, a
/// checkpoint, a MANIFEST / STORE file, or a durable store directory —
/// and print its metadata.
fn run_info(path: &Path) -> Result<String, CliError> {
    let file_meta = std::fs::metadata(path).map_err(|e| CliError::Io(path.to_path_buf(), e))?;
    if file_meta.is_dir() {
        return info_store_dir(path);
    }
    let bytes = std::fs::read(path).map_err(|e| CliError::Io(path.to_path_buf(), e))?;
    match bytes.get(..4) {
        Some(b"SFCK") => {
            let info =
                checkpoint_info(&bytes).map_err(|e| CliError::Sketch(path.to_path_buf(), e))?;
            Ok(format!(
                "checkpoint {}\n\
                 \x20 epoch:             {}\n\
                 \x20 key type:          {}\n\
                 \x20 capacity (k):      {}\n\
                 \x20 counters in use:   {}\n\
                 \x20 policy:            {:?}\n\
                 \x20 seed:              {}\n\
                 \x20 stream weight N:   {}{}\n\
                 \x20 max error:         {}{}\n\
                 \x20 updates n:         {}\n\
                 \x20 purges:            {}\n",
                path.display(),
                info.epoch,
                info.key_type,
                info.max_counters,
                info.num_counters,
                info.policy,
                info.seed,
                info.stream_weight,
                saturated_marker(info.weight_saturated),
                info.offset,
                saturated_marker(info.offset_saturated),
                info.num_updates,
                info.num_purges,
            ))
        }
        Some(b"SFMF") => {
            let manifest = Manifest::from_bytes(&bytes)
                .map_err(|e| CliError::Sketch(path.to_path_buf(), e))?;
            Ok(format!(
                "store manifest {}\n\
                 \x20 checkpoint epoch:  {}\n\
                 \x20 checkpoint file:   {}\n\
                 \x20 WAL replay start:  segment {}, offset {}\n\
                 \x20 capacity (k):      {}\n\
                 \x20 policy:            {:?}\n\
                 \x20 seed:              {}\n",
                path.display(),
                manifest.epoch,
                manifest.checkpoint.as_deref().unwrap_or("(none yet)"),
                manifest.wal_start.segment,
                manifest.wal_start.offset,
                manifest.config.max_counters,
                manifest.config.policy,
                manifest.config.seed,
            ))
        }
        Some(b"SFST") => {
            let meta = StoreMeta::from_bytes(&bytes)
                .map_err(|e| CliError::Sketch(path.to_path_buf(), e))?;
            Ok(format!(
                "sharded store metadata {}\n\
                 \x20 shards:            {}\n\
                 \x20 counters/shard:    {}\n\
                 \x20 merged capacity:   {}\n\
                 \x20 policy:            {:?}\n\
                 \x20 base seed:         {}\n",
                path.display(),
                meta.num_shards,
                meta.counters_per_shard,
                meta.merged_capacity,
                meta.policy,
                meta.seed,
            ))
        }
        Some(b"SFQI") => Ok(format!(
            "items sketch {} (generic key type; decode with the \
             ItemsSketch API for full details)\n",
            path.display()
        )),
        Some(b"SFWS") => Ok(format!(
            "windowed bucket store {} — query with `streamfreq window query`\n",
            path.display()
        )),
        _ => {
            let s = read_sketch(path)?;
            let engine = s.engine();
            Ok(format!(
                "sketch {}\n\
                 \x20 key type:          u64\n\
                 \x20 capacity (k):      {}\n\
                 \x20 counters in use:   {}\n\
                 \x20 policy:            {:?}\n\
                 \x20 stream weight N:   {}{}\n\
                 \x20 updates n:         {}\n\
                 \x20 purges:            {}\n\
                 \x20 max error:         {}{}\n\
                 \x20 table memory:      {} bytes\n",
                path.display(),
                s.max_counters(),
                s.num_counters(),
                s.policy(),
                s.stream_weight(),
                saturated_marker(engine.stream_weight_saturated()),
                s.num_updates(),
                s.num_purges(),
                s.maximum_error(),
                saturated_marker(engine.maximum_error_saturated()),
                s.memory_bytes()
            ))
        }
    }
}

/// Total bytes of WAL segments directly inside `dir`.
fn wal_bytes_in(dir: &Path) -> Result<u64, CliError> {
    let mut total = 0;
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(CliError::Io(dir.to_path_buf(), e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| CliError::Io(dir.to_path_buf(), e))?;
        if let Some(name) = entry.file_name().to_str() {
            if name.starts_with("wal-") && name.ends_with(".seg") {
                total += entry
                    .metadata()
                    .map_err(|e| CliError::Io(entry.path(), e))?
                    .len();
            }
        }
    }
    Ok(total)
}

/// One manifest's summary line for `info` on a store directory.
fn manifest_summary(dir: &Path) -> Result<String, CliError> {
    let persist_err = |e| CliError::Persist(dir.to_path_buf(), e);
    match read_manifest(dir).map_err(persist_err)? {
        None => Ok("no MANIFEST".into()),
        Some(m) => {
            let mut n = 0;
            if let Some(name) = &m.checkpoint {
                let ckpt_path = dir.join(name);
                let bytes =
                    std::fs::read(&ckpt_path).map_err(|e| CliError::Io(ckpt_path.clone(), e))?;
                n = checkpoint_info(&bytes)
                    .map_err(|e| CliError::Sketch(ckpt_path, e))?
                    .stream_weight;
            }
            let log = if m.shared_log {
                format!("shared log stream {}", m.stream)
            } else {
                format!("wal bytes {}", wal_bytes_in(dir)?)
            };
            Ok(format!(
                "checkpoint epoch {}, checkpointed N = {n}, {log}",
                m.epoch,
            ))
        }
    }
}

/// `info` on a durable store directory: bank metadata plus one line per
/// shard (or the single manifest for a non-sharded store).
fn info_store_dir(dir: &Path) -> Result<String, CliError> {
    let persist_err = |e| CliError::Persist(dir.to_path_buf(), e);
    if let Some(meta) = read_store_meta(dir).map_err(persist_err)? {
        let mut out = format!(
            "durable store {}\n\
             \x20 shards:            {}\n\
             \x20 counters/shard:    {}\n\
             \x20 merged capacity:   {}\n\
             \x20 policy:            {:?}\n\
             \x20 base seed:         {}\n",
            dir.display(),
            meta.num_shards,
            meta.counters_per_shard,
            meta.merged_capacity,
            meta.policy,
            meta.seed,
        );
        out.push_str(&format!("\x20 shared wal bytes:  {}\n", wal_bytes_in(dir)?));
        for s in 0..meta.num_shards {
            let sdir = shard_dir(dir, s);
            out.push_str(&format!("  shard {s}: {}\n", manifest_summary(&sdir)?));
        }
        return Ok(out);
    }
    if read_manifest(dir).map_err(persist_err)?.is_some() {
        return Ok(format!(
            "durable store {} (single sketch)\n  {}\n",
            dir.display(),
            manifest_summary(dir)?
        ));
    }
    Err(CliError::Usage(format!(
        "{}: not a durable store (no STORE or MANIFEST)",
        dir.display()
    )))
}

/// `streamfreq checkpoint`: recover an offline store read-write, write a
/// fresh checkpoint per shard in one coordinated round, truncate the
/// shared log (legacy per-shard layouts migrate onto it on open).
fn run_store_checkpoint(data_dir: &Path) -> Result<String, CliError> {
    let persist_err = |e| CliError::Persist(data_dir.to_path_buf(), e);
    let mut out = format!("checkpointing {}\n", data_dir.display());
    if read_store_meta(data_dir).map_err(persist_err)?.is_some() {
        let (mut stores, reports): (Vec<DurableSketch<u64>>, Vec<_>) =
            open_bank_existing::<u64>(data_dir, DurabilityOptions::default())
                .map_err(persist_err)?
                .into_iter()
                .unzip();
        let wal_before = stores[0].wal_bytes();
        checkpoint_bank(&mut stores).map_err(persist_err)?;
        for (s, (store, report)) in stores.iter().zip(&reports).enumerate() {
            out.push_str(&format!(
                "  shard {s}: epoch {}, replayed {} records ({} updates), N = {}\n",
                store.last_checkpoint_epoch(),
                report.records_replayed,
                report.updates_replayed,
                store.engine().stream_weight(),
            ));
        }
        out.push_str(&format!(
            "  shared wal {} -> {} bytes\n",
            wal_before,
            stores[0].wal_bytes(),
        ));
        return Ok(out);
    }
    let (mut store, report) =
        DurableSketch::<u64>::open_existing(data_dir, DurabilityOptions::default())
            .map_err(persist_err)?;
    let wal_before = store.wal_bytes();
    let epoch = store.checkpoint().map_err(persist_err)?;
    out.push_str(&format!(
        "  sketch: epoch {epoch}, replayed {} records ({} updates), \
         N = {}, wal {} -> {} bytes\n",
        report.records_replayed,
        report.updates_replayed,
        store.engine().stream_weight(),
        wal_before,
        store.wal_bytes(),
    ));
    Ok(out)
}

/// `streamfreq recover`: rebuild a store's state read-only and export
/// the (Algorithm-5 merged, for sharded banks) sketch file. Reports
/// replay throughput: batch-coalesced WAL replay is the recovery fast
/// path and the figure worth watching when a store grows.
fn run_store_recover(data_dir: &Path, output: &Path) -> Result<String, CliError> {
    let persist_err = |e| CliError::Persist(data_dir.to_path_buf(), e);
    let mut out = format!("recovering {}\n", data_dir.display());
    let started = std::time::Instant::now();
    let mut replayed_records: u64 = 0;
    let mut replayed_updates: u64 = 0;
    let merged = match read_store_meta(data_dir).map_err(persist_err)? {
        Some(meta) => {
            let mut merged = FreqSketch::builder(meta.merged_capacity)
                .policy(meta.policy)
                .seed(meta.seed)
                .build()
                .map_err(|e| CliError::Sketch(output.to_path_buf(), e))?;
            let shards = recover_bank_readonly::<u64>(data_dir).map_err(persist_err)?;
            for (s, (engine, epoch, report)) in shards.into_iter().enumerate() {
                out.push_str(&format!(
                    "  shard {s}: {:?}, checkpoint epoch {epoch}, \
                     replayed {} records, N = {}\n",
                    report.source,
                    report.records_replayed,
                    engine.stream_weight(),
                ));
                replayed_records += report.records_replayed;
                replayed_updates += report.updates_replayed;
                merged.merge(&FreqSketch::from(engine));
            }
            merged
        }
        None => {
            let (engine, epoch, report) =
                recover_engine_readonly::<u64>(data_dir).map_err(persist_err)?;
            out.push_str(&format!(
                "  {:?}, checkpoint epoch {epoch}, replayed {} records\n",
                report.source, report.records_replayed,
            ));
            replayed_records = report.records_replayed;
            replayed_updates = report.updates_replayed;
            FreqSketch::from(engine)
        }
    };
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    out.push_str(&format!(
        "replayed {replayed_records} records ({replayed_updates} updates) \
         in {:.1} ms — {:.1}M updates/s\n",
        secs * 1e3,
        replayed_updates as f64 / secs / 1e6,
    ));
    write_sketch(output, &merged)?;
    out.push_str(&format!(
        "wrote {}: N = {}, {} counters, max error ±{}\n",
        output.display(),
        merged.stream_weight(),
        merged.num_counters(),
        merged.maximum_error()
    ));
    Ok(out)
}

fn read_sketch(path: &Path) -> Result<FreqSketch, CliError> {
    let bytes = std::fs::read(path).map_err(|e| CliError::Io(path.to_path_buf(), e))?;
    FreqSketch::deserialize_from_bytes(&bytes).map_err(|e| CliError::Sketch(path.to_path_buf(), e))
}

fn write_sketch(path: &Path, sketch: &FreqSketch) -> Result<(), CliError> {
    std::fs::write(path, sketch.serialize_to_bytes())
        .map_err(|e| CliError::Io(path.to_path_buf(), e))
}

/// Executes a command and returns the text report to print.
///
/// # Errors
/// Returns a [`CliError`] describing I/O, codec, or usage failures.
pub fn run(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Build {
            k,
            policy,
            seed,
            threads,
            shards,
            input,
            output,
        } => {
            let stream = load_binary(input).map_err(|e| CliError::Io(input.clone(), e))?;
            if *threads > 1 || *shards > 0 {
                // Multi-core path: hash-partitioned bank, lock-free scoped
                // ingestion, then the Algorithm-5 merged export so the
                // output file is an ordinary k-counter sketch. Counters
                // divide across shards so total state matches a plain
                // -k build (the fig1_runtime convention).
                let num_shards = if *shards > 0 { *shards } else { *threads };
                let k_per_shard = (*k / num_shards).max(1);
                let mut bank = ShardedSketch::<u64>::builder(num_shards, k_per_shard)
                    .policy(*policy)
                    .seed(*seed)
                    .build()
                    .map_err(|e| CliError::Sketch(output.clone(), e))?;
                bank.ingest_parallel(&stream, *threads);
                let sketch = FreqSketch::from(bank.merged_with_capacity(*k));
                write_sketch(output, &sketch)?;
                return Ok(format!(
                    "built {} via {} shards × {} threads: {} updates, N = {}, \
                     {} counters, max error ±{}\n",
                    output.display(),
                    num_shards,
                    threads,
                    sketch.num_updates(),
                    sketch.stream_weight(),
                    sketch.num_counters(),
                    sketch.maximum_error()
                ));
            }
            let mut sketch = FreqSketch::builder(*k)
                .policy(*policy)
                .seed(*seed)
                .build()
                .map_err(|e| CliError::Sketch(output.clone(), e))?;
            sketch.update_batch(&stream);
            write_sketch(output, &sketch)?;
            Ok(format!(
                "built {}: {} updates, N = {}, {} counters, max error ±{}\n",
                output.display(),
                sketch.num_updates(),
                sketch.stream_weight(),
                sketch.num_counters(),
                sketch.maximum_error()
            ))
        }
        Command::Info(path) => run_info(path),
        Command::Top { path, n } => {
            let s = read_sketch(path)?;
            Ok(format_rows(&s.top_k(*n)))
        }
        Command::Query { path, items, top } => {
            let s = read_sketch(path)?;
            let mut out = String::new();
            for &item in items {
                out.push_str(&format!(
                    "{item}: estimate {} (certified {} ..= {})\n",
                    s.estimate(item),
                    s.lower_bound(item),
                    s.upper_bound(item)
                ));
            }
            if let Some(n) = top {
                if !items.is_empty() {
                    out.push('\n');
                }
                out.push_str(&format!("top {n} of {} tracked items:\n", s.num_counters()));
                out.push_str(&format_rows(&s.top_k(*n)));
            }
            Ok(out)
        }
        Command::Heavy {
            path,
            phi,
            error_type,
        } => {
            let s = read_sketch(path)?;
            let rows = s.heavy_hitters(*phi, *error_type);
            let n = s.stream_weight().max(1);
            let mut out = format!(
                "{} items may exceed {:.3}% of N = {}\n",
                rows.len(),
                phi * 100.0,
                s.stream_weight()
            );
            for row in rows {
                out.push_str(&format!(
                    "  {:>20}  ~{}  ({:.3}% of N)\n",
                    row.item,
                    row.estimate,
                    100.0 * row.estimate as f64 / n as f64
                ));
            }
            Ok(out)
        }
        Command::Merge { inputs, output } => {
            let mut merged = read_sketch(&inputs[0])?;
            for path in &inputs[1..] {
                let other = read_sketch(path)?;
                merged.merge(&other);
            }
            write_sketch(output, &merged)?;
            Ok(format!(
                "merged {} sketches into {}: N = {}, {} counters, max error ±{}\n",
                inputs.len(),
                output.display(),
                merged.stream_weight(),
                merged.num_counters(),
                merged.maximum_error()
            ))
        }
        Command::Synth {
            updates,
            flows,
            seed,
            output,
        } => {
            let mut config = CaidaConfig::scaled(*updates);
            if *flows > 0 {
                config.num_flows = *flows;
            }
            config.seed = *seed;
            let stream: Vec<(u64, u64)> = SyntheticCaida::new(&config).collect();
            save_binary(&stream, output).map_err(|e| CliError::Io(output.clone(), e))?;
            Ok(format!(
                "wrote {}: {} updates over ~{} flows\n",
                output.display(),
                stream.len(),
                config.num_flows
            ))
        }
        Command::WindowSynth {
            updates,
            epochs,
            width,
            seed,
            output,
        } => {
            let config = DriftConfig {
                updates: *updates,
                epochs: *epochs,
                epoch_len: *width,
                seed: *seed,
                ..DriftConfig::default()
            };
            let stream = materialize_drifting_zipf(&config);
            save_timed_binary(&stream, output).map_err(|e| CliError::Io(output.clone(), e))?;
            Ok(format!(
                "wrote {}: {} timestamped updates over {} epochs of width {}\n",
                output.display(),
                stream.len(),
                epochs,
                width
            ))
        }
        Command::WindowBuild {
            width,
            k,
            policy,
            retention,
            input,
            output,
        } => {
            let stream = load_timed_binary(input).map_err(|e| CliError::Io(input.clone(), e))?;
            // Timestamps must be non-decreasing (streaming ingestion);
            // user-supplied files get a CLI error, not a store panic.
            if let Some(pos) = stream.windows(2).position(|w| w[1].0 < w[0].0) {
                return Err(CliError::Usage(format!(
                    "{}: timestamps must be non-decreasing (record {} has {} after {})",
                    input.display(),
                    pos + 1,
                    stream[pos + 1].0,
                    stream[pos].0
                )));
            }
            let mut store: WindowedStore<u64> = WindowedStore::try_with_policy(*width, *k, *policy)
                .map_err(|e| CliError::Sketch(output.clone(), e))?;
            if *retention > 0 {
                store = store.with_retention(*retention);
            }
            // Feed contiguous equal-timestamp runs through the engine's
            // batched ingestion path; a run of one falls back to the
            // scalar path automatically.
            let mut batch: Vec<(u64, u64)> = Vec::new();
            for (t, range) in tick_runs(&stream) {
                batch.clear();
                batch.extend(stream[range].iter().map(|&(_, item, w)| (item, w)));
                store.record_batch(t, &batch);
            }
            std::fs::write(output, store.serialize_to_bytes())
                .map_err(|e| CliError::Io(output.clone(), e))?;
            Ok(format!(
                "built {}: {} updates into {} closed + 1 open windows of width {} \
                 ({} evicted), {} stored bytes\n",
                output.display(),
                stream.len(),
                store.num_closed_windows(),
                width,
                store.evicted_windows(),
                store.stored_bytes()
            ))
        }
        Command::Serve(options) => serve::run_serve(options),
        Command::QueryRemote {
            port,
            request,
            binary,
            timeout_ms,
            retries,
        } => serve::run_query_remote(*port, request, *binary, *timeout_ms, *retries),
        Command::ClusterIngest(options) => cluster::run_cluster_ingest(options),
        Command::ClusterQuery(options) => cluster::run_cluster_query(options),
        Command::ClusterServe(options) => cluster::run_cluster_serve(options),
        Command::ClusterReplicate(options) => cluster::run_cluster_replicate(options),
        Command::ClusterPromote {
            topology,
            node,
            addr,
        } => cluster::run_cluster_promote(topology, *node, addr),
        Command::Checkpoint { data_dir } => run_store_checkpoint(data_dir),
        Command::Recover { data_dir, output } => run_store_recover(data_dir, output),
        Command::WindowQuery {
            path,
            from,
            to,
            top,
        } => {
            let bytes = std::fs::read(path).map_err(|e| CliError::Io(path.clone(), e))?;
            let store = WindowedStore::<u64>::deserialize_from_bytes(&bytes)
                .map_err(|e| CliError::Sketch(path.clone(), e))?;
            match store
                .query_range(*from, *to)
                .map_err(|e| CliError::Sketch(path.clone(), e))?
            {
                None => Ok(format!("no windows overlap [{from}, {to})\n")),
                Some(merged) => {
                    let mut out = format!(
                        "merged summary of [{from}, {to}): N = {}, {} counters, \
                         max error ±{}\n",
                        merged.stream_weight(),
                        merged.num_counters(),
                        merged.maximum_error()
                    );
                    out.push_str(&format_rows(&merged.top_k(*top)));
                    Ok(out)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("streamfreq-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn parses_build_with_policy() {
        let cmd = parse_args(&args(
            "build -k 1024 --input in.bin --output out.sk --policy q25 --seed 7",
        ))
        .unwrap();
        match cmd {
            Command::Build {
                k, policy, seed, ..
            } => {
                assert_eq!(k, 1024);
                assert_eq!(policy, PurgePolicy::sample_quantile(0.25));
                assert_eq!(seed, 7);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_flags() {
        assert!(parse_args(&args("build -k 10 --input x")).is_err());
        assert!(parse_args(&args("heavy s.sk")).is_err());
        assert!(parse_args(&args("merge a.sk --output m.sk")).is_err());
        assert!(parse_args(&args("frobnicate")).is_err());
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse_args(&args("build -k lots --input a --output b")).is_err());
        assert!(parse_args(&args("heavy s.sk --phi 1.5")).is_err());
        assert!(parse_args(&args("build -k 8 --input a --output b --policy q150")).is_err());
        assert!(parse_args(&args("query s.sk")).is_err());
    }

    #[test]
    fn empty_args_mean_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args("help")).unwrap(), Command::Help);
    }

    #[test]
    fn end_to_end_synth_build_query_merge() {
        let stream_path = tmp("e2e.bin");
        let sk_a = tmp("a.sk");
        let sk_b = tmp("b.sk");
        let merged = tmp("m.sk");

        // synth
        run(&Command::Synth {
            updates: 50_000,
            flows: 2_000,
            seed: 1,
            output: stream_path.clone(),
        })
        .unwrap();

        // build two sketches from the same stream with different seeds
        for (path, seed) in [(&sk_a, 1u64), (&sk_b, 2u64)] {
            run(&Command::Build {
                k: 512,
                policy: PurgePolicy::smed(),
                seed,
                threads: 1,
                shards: 0,
                input: stream_path.clone(),
                output: path.clone(),
            })
            .unwrap();
        }

        // info
        let info = run(&Command::Info(sk_a.clone())).unwrap();
        assert!(info.contains("capacity (k):      512"), "{info}");

        // top
        let top = run(&Command::Top {
            path: sk_a.clone(),
            n: 5,
        })
        .unwrap();
        assert_eq!(top.lines().count(), 6, "header + 5 rows");

        // query a heavy item from top output
        let heavy_item: u64 = top
            .lines()
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let q = run(&Command::Query {
            path: sk_a.clone(),
            items: vec![heavy_item],
            top: None,
        })
        .unwrap();
        assert!(q.contains("estimate"));

        // merge
        let report = run(&Command::Merge {
            inputs: vec![sk_a.clone(), sk_b.clone()],
            output: merged.clone(),
        })
        .unwrap();
        assert!(report.contains("merged 2 sketches"));
        let m = read_sketch(&merged).unwrap();
        let a = read_sketch(&sk_a).unwrap();
        assert_eq!(m.stream_weight(), 2 * a.stream_weight());

        // heavy
        let h = run(&Command::Heavy {
            path: merged.clone(),
            phi: 0.01,
            error_type: ErrorType::NoFalseNegatives,
        })
        .unwrap();
        assert!(h.contains("% of N"));

        for p in [stream_path, sk_a, sk_b, merged] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn parses_query_top_flag() {
        let cmd = parse_args(&args("query s.sk 7 9 --top 5")).unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                path: PathBuf::from("s.sk"),
                items: vec![7, 9],
                top: Some(5),
            }
        );
        // --top alone is a valid query (pure top-k report).
        let cmd = parse_args(&args("query s.sk --top 3")).unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                path: PathBuf::from("s.sk"),
                items: vec![],
                top: Some(3),
            }
        );
        assert!(parse_args(&args("query s.sk --top 0")).is_err());
        assert!(parse_args(&args("query s.sk")).is_err(), "no items, no top");
        assert!(
            parse_args(&args("query s.sk --top 3 --top 7")).is_err(),
            "a repeated --top must be rejected, not silently dropped"
        );
        assert!(
            parse_args(&args("query s.sk --top")).is_err(),
            "missing value"
        );
    }

    #[test]
    fn window_build_reports_bad_inputs_as_errors() {
        // Invalid k: a CliError, not a constructor panic.
        let stream_path = tmp("window-bad.tbin");
        streamfreq_workloads::save_timed_binary(&[(0, 1, 1), (100, 2, 1)], &stream_path).unwrap();
        let err = run(&Command::WindowBuild {
            width: 100,
            k: 0,
            policy: PurgePolicy::smed(),
            retention: 0,
            input: stream_path.clone(),
            output: tmp("window-bad.wsk"),
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Sketch(..)), "{err:?}");

        // Out-of-order timestamps in a user file: a CliError, not a
        // store assertion panic.
        let disordered = tmp("window-disorder.tbin");
        streamfreq_workloads::save_timed_binary(&[(200, 1, 1), (0, 2, 1)], &disordered).unwrap();
        let err = run(&Command::WindowBuild {
            width: 100,
            k: 16,
            policy: PurgePolicy::smed(),
            retention: 0,
            input: disordered.clone(),
            output: tmp("window-disorder.wsk"),
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("non-decreasing"), "{msg}");
        for p in [stream_path, disordered] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn parses_window_subcommands() {
        let cmd = parse_args(&args(
            "window build --width 100 -k 64 --input s.tbin --output s.wsk --retention 12",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::WindowBuild {
                width: 100,
                k: 64,
                policy: PurgePolicy::smed(),
                retention: 12,
                input: PathBuf::from("s.tbin"),
                output: PathBuf::from("s.wsk"),
            }
        );
        let cmd = parse_args(&args("window query s.wsk --from 0 --to 500 --top 4")).unwrap();
        assert_eq!(
            cmd,
            Command::WindowQuery {
                path: PathBuf::from("s.wsk"),
                from: 0,
                to: 500,
                top: 4,
            }
        );
        let cmd = parse_args(&args(
            "window synth --updates 1000 --output s.tbin --epochs 4",
        ))
        .unwrap();
        match cmd {
            Command::WindowSynth {
                updates, epochs, ..
            } => {
                assert_eq!(updates, 1000);
                assert_eq!(epochs, 4);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse_args(&args("window")).is_err());
        assert!(parse_args(&args("window frobnicate")).is_err());
        assert!(parse_args(&args("window build -k 8 --input a --output b")).is_err());
        assert!(parse_args(&args("window query s.wsk --from 9 --to 9")).is_err());
        assert!(parse_args(&args("window build --width 0 -k 8 --input a --output b")).is_err());
    }

    #[test]
    fn query_top_reports_largest_rows() {
        let stream_path = tmp("query-top.bin");
        let sk = tmp("query-top.sk");
        run(&Command::Synth {
            updates: 30_000,
            flows: 1_000,
            seed: 11,
            output: stream_path.clone(),
        })
        .unwrap();
        run(&Command::Build {
            k: 256,
            policy: PurgePolicy::smed(),
            seed: 1,
            threads: 1,
            shards: 0,
            input: stream_path.clone(),
            output: sk.clone(),
        })
        .unwrap();
        // Pure top-k report.
        let out = run(&Command::Query {
            path: sk.clone(),
            items: vec![],
            top: Some(5),
        })
        .unwrap();
        assert!(out.contains("top 5 of"), "{out}");
        let rows: Vec<&str> = out.lines().skip(2).collect();
        assert_eq!(rows.len(), 5, "{out}");
        // The report agrees with the standalone `top` command.
        let top = run(&Command::Top {
            path: sk.clone(),
            n: 5,
        })
        .unwrap();
        for line in &rows {
            assert!(top.contains(line), "row {line} missing from `top` output");
        }
        // Combined: point estimates first, then the table.
        let first_item: u64 = rows[0].split_whitespace().next().unwrap().parse().unwrap();
        let combined = run(&Command::Query {
            path: sk.clone(),
            items: vec![first_item],
            top: Some(2),
        })
        .unwrap();
        assert!(
            combined.contains(&format!("{first_item}: estimate")),
            "{combined}"
        );
        assert!(combined.contains("top 2 of"), "{combined}");
        for p in [stream_path, sk] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn window_synth_build_query_end_to_end() {
        let stream_path = tmp("window-e2e.tbin");
        let store_path = tmp("window-e2e.wsk");
        let synth_report = run(&Command::WindowSynth {
            updates: 40_000,
            epochs: 8,
            width: 100,
            seed: 5,
            output: stream_path.clone(),
        })
        .unwrap();
        assert!(synth_report.contains("8 epochs"), "{synth_report}");

        let build_report = run(&Command::WindowBuild {
            width: 100,
            k: 128,
            policy: PurgePolicy::smed(),
            retention: 0,
            input: stream_path.clone(),
            output: store_path.clone(),
        })
        .unwrap();
        assert!(build_report.contains("7 closed + 1 open"), "{build_report}");

        // Full-range query sees the whole stream's weight.
        let full = run(&Command::WindowQuery {
            path: store_path.clone(),
            from: 0,
            to: 800,
            top: 3,
        })
        .unwrap();
        assert!(full.contains("merged summary of [0, 800)"), "{full}");
        assert_eq!(full.lines().count(), 1 + 1 + 3, "summary + header + rows");

        // A sub-range query carries strictly less mass.
        let n_of = |report: &str| -> u64 {
            report
                .split("N = ")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let part = run(&Command::WindowQuery {
            path: store_path.clone(),
            from: 200,
            to: 400,
            top: 3,
        })
        .unwrap();
        assert!(n_of(&part) < n_of(&full), "{part}\n{full}");

        // Outside the data: no overlap.
        let empty = run(&Command::WindowQuery {
            path: store_path.clone(),
            from: 10_000,
            to: 20_000,
            top: 3,
        })
        .unwrap();
        assert!(empty.contains("no windows overlap"), "{empty}");

        for p in [stream_path, store_path] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn window_build_retention_evicts() {
        let stream_path = tmp("window-ret.tbin");
        let store_path = tmp("window-ret.wsk");
        run(&Command::WindowSynth {
            updates: 20_000,
            epochs: 10,
            width: 50,
            seed: 6,
            output: stream_path.clone(),
        })
        .unwrap();
        let report = run(&Command::WindowBuild {
            width: 50,
            k: 64,
            policy: PurgePolicy::smed(),
            retention: 3,
            input: stream_path.clone(),
            output: store_path.clone(),
        })
        .unwrap();
        assert!(report.contains("3 closed + 1 open"), "{report}");
        assert!(report.contains("(6 evicted)"), "{report}");
        // Evicted history is really gone from the persisted store.
        let gone = run(&Command::WindowQuery {
            path: store_path.clone(),
            from: 0,
            to: 300,
            top: 3,
        })
        .unwrap();
        assert!(gone.contains("no windows overlap"), "{gone}");
        for p in [stream_path, store_path] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn parses_build_threads_and_shards() {
        let cmd = parse_args(&args(
            "build -k 256 --input in.bin --output out.sk --threads 4 --shards 8",
        ))
        .unwrap();
        match cmd {
            Command::Build {
                threads, shards, ..
            } => {
                assert_eq!(threads, 4);
                assert_eq!(shards, 8);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse_args(&args("build -k 8 --input a --output b --threads 0")).is_err());
        assert!(parse_args(&args("build -k 8 --input a --output b --shards 0")).is_err());
    }

    #[test]
    fn threaded_build_is_thread_count_invariant_and_readable() {
        let stream_path = tmp("threaded.bin");
        run(&Command::Synth {
            updates: 40_000,
            flows: 1_500,
            seed: 3,
            output: stream_path.clone(),
        })
        .unwrap();
        let mut outputs: Vec<Vec<u8>> = Vec::new();
        for threads in [1usize, 2, 4] {
            let out = tmp(&format!("threaded-{threads}.sk"));
            let report = run(&Command::Build {
                k: 256,
                policy: PurgePolicy::smed(),
                seed: 9,
                threads,
                shards: 4, // fixed bank width → identical output per thread count
                input: stream_path.clone(),
                output: out.clone(),
            })
            .unwrap();
            assert!(report.contains("4 shards"), "{report}");
            outputs.push(std::fs::read(&out).unwrap());
            // The export is an ordinary sketch file: info must read it.
            let info = run(&Command::Info(out.clone())).unwrap();
            assert!(info.contains("capacity (k):      256"), "{info}");
            std::fs::remove_file(out).unwrap();
        }
        assert_eq!(outputs[0], outputs[1], "2 threads diverged from 1");
        assert_eq!(outputs[0], outputs[2], "4 threads diverged from 1");
        std::fs::remove_file(stream_path).unwrap();
    }

    #[test]
    fn parses_serve_and_query_remote() {
        let cmd = parse_args(&args(
            "serve -k 512 --input s.bin --port 7070 --threads 2 --shards 4 \
             --passes 3 --snapshot-ms 25 --seed 9 --port-file p.txt",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve(serve::ServeOptions {
                port: 7070,
                port_file: Some(PathBuf::from("p.txt")),
                k: 512,
                policy: PurgePolicy::smed(),
                seed: 9,
                threads: 2,
                shards: 4,
                passes: 3,
                snapshot_ms: 25,
                input: Some(PathBuf::from("s.bin")),
                data_dir: None,
                fsync: streamfreq_core::FsyncPolicy::default(),
                checkpoint_ms: 0,
            })
        );
        let cmd = parse_args(&args("query-remote --port 7070 EST 42")).unwrap();
        assert_eq!(
            cmd,
            Command::QueryRemote {
                port: 7070,
                request: vec!["EST".into(), "42".into()],
                binary: false,
                timeout_ms: serve::DEFAULT_REMOTE_TIMEOUT_MS,
                retries: 0,
            }
        );
        assert!(parse_args(&args("serve --input s.bin")).is_err(), "no -k");
        // No --input is cluster-node mode, not an error.
        let node = parse_args(&args("serve -k 8")).unwrap();
        assert!(
            matches!(
                node,
                Command::Serve(serve::ServeOptions { input: None, .. })
            ),
            "{node:?}"
        );
        assert!(parse_args(&args("serve -k 8 --input s.bin --port 70000")).is_err());
        assert!(parse_args(&args("serve -k 8 --input s.bin --passes 0")).is_err());
        assert!(
            parse_args(&args("query-remote --port 7070")).is_err(),
            "no request"
        );
        assert!(parse_args(&args("query-remote STATS")).is_err(), "no port");
    }

    /// One protocol exchange over an established connection: sends the
    /// request line and reads the full response (count-prefixed rows
    /// included).
    fn protocol_request(conn: &mut std::net::TcpStream, request: &str) -> Vec<String> {
        use std::io::{BufRead, BufReader, Write};
        conn.write_all(format!("{request}\n").as_bytes()).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        let mut lines = vec![first.trim().to_string()];
        let multi_row = matches!(
            request
                .split_whitespace()
                .next()
                .map(str::to_ascii_uppercase)
                .as_deref(),
            Some("TOPK" | "HH")
        );
        if multi_row {
            if let Some(rows) = lines[0]
                .strip_prefix("OK ")
                .and_then(|m| m.parse::<usize>().ok())
            {
                for _ in 0..rows {
                    let mut row = String::new();
                    reader.read_line(&mut row).unwrap();
                    lines.push(row.trim().to_string());
                }
            }
        }
        lines
    }

    /// Parses a `STATS` response line into its key=value fields.
    fn stats_field(line: &str, key: &str) -> u64 {
        line.split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing {key} in `{line}`"))
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric {key} in `{line}`"))
    }

    #[test]
    fn serve_answers_queries_during_ingest_and_drains_exactly() {
        use std::net::TcpStream;
        use std::time::{Duration, Instant};

        let stream_path = tmp("serve-e2e.bin");
        run(&Command::Synth {
            updates: 100_000,
            flows: 3_000,
            seed: 21,
            output: stream_path.clone(),
        })
        .unwrap();
        let pass_weight: u64 = streamfreq_workloads::load_binary(&stream_path)
            .unwrap()
            .iter()
            .map(|&(_, w)| w)
            .sum();
        let passes = 40u64;

        let port_file = tmp("serve-e2e.port");
        let _ = std::fs::remove_file(&port_file);
        let options = serve::ServeOptions {
            port: 0,
            port_file: Some(port_file.clone()),
            k: 512,
            policy: PurgePolicy::smed(),
            seed: 7,
            threads: 2,
            shards: 4,
            passes,
            snapshot_ms: 10,
            input: Some(stream_path.clone()),
            data_dir: None,
            fsync: streamfreq_core::FsyncPolicy::default(),
            checkpoint_ms: 0,
        };
        let server = std::thread::spawn(move || run(&Command::Serve(options)).unwrap());

        // Wait for the listener handshake.
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&port_file) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(
                Instant::now() < deadline,
                "server never wrote the port file"
            );
            std::thread::sleep(Duration::from_millis(5));
        };
        let port: u16 = addr.rsplit(':').next().unwrap().parse().unwrap();
        let mut conn = TcpStream::connect(&addr).unwrap();

        // Queries answered while ingestion is still running: the first
        // STATS must land mid-ingest (20 passes of 100k updates), and
        // repeated STATS see monotonically advancing epochs and stream
        // weight — the bounded-staleness view.
        let first = protocol_request(&mut conn, "STATS");
        assert!(first[0].starts_with("OK "), "{first:?}");
        assert_eq!(
            stats_field(&first[0], "ingest_done"),
            0,
            "first STATS should land during ingestion: {first:?}"
        );
        let mut last_epoch = stats_field(&first[0], "epoch");
        let mut last_n = stats_field(&first[0], "n");
        let final_stats = loop {
            let stats = protocol_request(&mut conn, "STATS");
            let epoch = stats_field(&stats[0], "epoch");
            let n = stats_field(&stats[0], "n");
            assert!(epoch >= last_epoch, "epoch went backwards: {stats:?}");
            assert!(n >= last_n, "stream weight shrank: {stats:?}");
            last_epoch = epoch;
            last_n = n;
            // Mid-ingest queries on the other verbs must answer too.
            let top = protocol_request(&mut conn, "TOPK 3");
            assert!(top[0].starts_with("OK "), "{top:?}");
            let hh = protocol_request(&mut conn, "HH 0.5");
            assert!(hh[0].starts_with("OK "), "{hh:?}");
            if stats_field(&stats[0], "ingest_done") == 1 {
                break stats;
            }
            assert!(Instant::now() < deadline, "ingestion never finished");
        };

        // The sealed view is exact: every pass of the file is in.
        assert_eq!(stats_field(&final_stats[0], "n"), pass_weight * passes);
        assert_eq!(stats_field(&final_stats[0], "shards"), 4);

        // TOPK rows are well-formed and estimable via EST.
        let top = protocol_request(&mut conn, "TOPK 5");
        assert_eq!(top.len(), 6, "{top:?}");
        let heaviest: u64 = top[1].split_whitespace().next().unwrap().parse().unwrap();
        let est = protocol_request(&mut conn, &format!("EST {heaviest}"));
        let fields: Vec<u64> = est[0]
            .strip_prefix("OK ")
            .unwrap()
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        assert_eq!(fields.len(), 3, "{est:?}");
        assert!(fields[1] <= fields[0] && fields[0] <= fields[2].max(fields[0]));

        // Heavy hitters with both contracts, and protocol errors.
        assert!(protocol_request(&mut conn, "HH 0.01 nfp")[0].starts_with("OK "));
        assert!(protocol_request(&mut conn, "frobnicate")[0].starts_with("ERR "));
        assert!(protocol_request(&mut conn, "EST notanumber")[0].starts_with("ERR "));
        assert!(protocol_request(&mut conn, "HH 1.5")[0].starts_with("ERR "));

        // The query-remote client speaks the same protocol.
        let remote = run(&Command::QueryRemote {
            port,
            request: vec!["STATS".into()],
            binary: false,
            timeout_ms: serve::DEFAULT_REMOTE_TIMEOUT_MS,
            retries: 0,
        })
        .unwrap();
        assert_eq!(stats_field(remote.trim(), "ingest_done"), 1);
        let remote_top = run(&Command::QueryRemote {
            port,
            request: vec!["TOPK".into(), "2".into()],
            binary: false,
            timeout_ms: serve::DEFAULT_REMOTE_TIMEOUT_MS,
            retries: 0,
        })
        .unwrap();
        assert_eq!(remote_top.lines().count(), 3, "{remote_top}");

        // QUIT shuts the whole server down; run() returns the report.
        let bye = run(&Command::QueryRemote {
            port,
            request: vec!["QUIT".into()],
            binary: false,
            timeout_ms: serve::DEFAULT_REMOTE_TIMEOUT_MS,
            retries: 0,
        })
        .unwrap();
        assert!(bye.starts_with("OK bye"), "{bye}");
        let report = server.join().unwrap();
        assert!(report.contains("queries over"), "{report}");
        assert!(
            report.contains(&format!("N = {}", pass_weight * passes)),
            "{report}"
        );

        for p in [stream_path, port_file] {
            let _ = std::fs::remove_file(p);
        }
    }

    /// Reads one binary response frame `[len u32le | status | payload]`.
    fn read_frame(conn: &mut std::net::TcpStream) -> (u8, Vec<u8>) {
        use std::io::Read;
        let mut header = [0u8; 4];
        conn.read_exact(&mut header).unwrap();
        let len = u32::from_le_bytes(header) as usize;
        assert!(len > 0, "empty response frame");
        let mut frame = vec![0u8; len];
        conn.read_exact(&mut frame).unwrap();
        let payload = frame.split_off(1);
        (frame[0], payload)
    }

    #[test]
    fn serve_binary_protocol_pipelines_and_matches_text() {
        use std::io::Write;
        use std::net::TcpStream;
        use std::time::{Duration, Instant};

        let stream_path = tmp("serve-bin.bin");
        run(&Command::Synth {
            updates: 50_000,
            flows: 2_000,
            seed: 33,
            output: stream_path.clone(),
        })
        .unwrap();
        let port_file = tmp("serve-bin.port");
        let _ = std::fs::remove_file(&port_file);
        let options = serve::ServeOptions {
            port: 0,
            port_file: Some(port_file.clone()),
            k: 256,
            policy: PurgePolicy::smed(),
            seed: 5,
            threads: 2,
            shards: 2,
            passes: 1,
            snapshot_ms: 10,
            input: Some(stream_path.clone()),
            data_dir: None,
            fsync: streamfreq_core::FsyncPolicy::default(),
            checkpoint_ms: 0,
        };
        let server = std::thread::spawn(move || run(&Command::Serve(options)).unwrap());
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&port_file) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(
                Instant::now() < deadline,
                "server never wrote the port file"
            );
            std::thread::sleep(Duration::from_millis(5));
        };
        let port: u16 = addr.rsplit(':').next().unwrap().parse().unwrap();

        // Wait for ingest to finish over the text protocol so both
        // protocols then read the same sealed snapshot.
        let mut text = TcpStream::connect(addr.trim()).unwrap();
        loop {
            let stats = protocol_request(&mut text, "STATS");
            if stats_field(&stats[0], "ingest_done") == 1 {
                assert!(stats[0].contains("protocol=text"), "{stats:?}");
                break;
            }
            assert!(Instant::now() < deadline, "ingestion never finished");
            std::thread::sleep(Duration::from_millis(5));
        }

        // One pipelined write: magic + many frames back to back. The
        // replies must come back in order, one frame per request.
        let mut conn = TcpStream::connect(addr.trim()).unwrap();
        let top = protocol_request(&mut text, "TOPK 1");
        let heaviest: u64 = top[1].split_whitespace().next().unwrap().parse().unwrap();
        let mut wire = serve::BINARY_MAGIC.to_vec();
        const PIPELINED: usize = 257;
        for _ in 0..PIPELINED {
            serve::encode_binary_request(&["EST".into(), heaviest.to_string()], &mut wire).unwrap();
        }
        serve::encode_binary_request(&["TOPK".into(), "3".into()], &mut wire).unwrap();
        serve::encode_binary_request(&["HH".into(), "0.5".into(), "nfp".into()], &mut wire)
            .unwrap();
        serve::encode_binary_request(&["STATS".into()], &mut wire).unwrap();
        conn.write_all(&wire).unwrap();

        // Every EST reply decodes to the text protocol's numbers.
        let text_est = protocol_request(&mut text, &format!("EST {heaviest}"));
        let expect: Vec<u64> = text_est[0]
            .strip_prefix("OK ")
            .unwrap()
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        for _ in 0..PIPELINED {
            let (status, payload) = read_frame(&mut conn);
            assert_eq!(status, 0);
            assert_eq!(payload.len(), 24);
            let field =
                |i: usize| u64::from_le_bytes(payload[i * 8..(i + 1) * 8].try_into().unwrap());
            assert_eq!([field(0), field(1), field(2)], expect[..]);
        }
        let (status, payload) = read_frame(&mut conn);
        assert_eq!(status, 0);
        let rows = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
        assert_eq!(payload.len(), 4 + 32 * rows, "row payload size");
        assert_eq!(
            u64::from_le_bytes(payload[4..12].try_into().unwrap()),
            heaviest,
            "TOPK's heaviest row must match the text protocol's"
        );
        let (status, _) = read_frame(&mut conn); // HH
        assert_eq!(status, 0);
        let (status, payload) = read_frame(&mut conn); // STATS
        assert_eq!(status, 0);
        let stats = String::from_utf8(payload).unwrap();
        assert!(stats.contains("protocol=binary"), "{stats}");
        assert!(stats.contains("ingest_done=1"), "{stats}");

        // Malformed requests get ERR frames, not a dropped connection.
        conn.write_all(&[5, 0, 0, 0, 0x7f, 1, 2, 3, 4]).unwrap();
        let (status, payload) = read_frame(&mut conn);
        assert_eq!(status, 1);
        assert!(String::from_utf8_lossy(&payload).contains("unknown opcode"));

        // The query-remote client's binary mode renders text-identical
        // output.
        let remote = run(&Command::QueryRemote {
            port,
            request: vec!["EST".into(), heaviest.to_string()],
            binary: true,
            timeout_ms: serve::DEFAULT_REMOTE_TIMEOUT_MS,
            retries: 0,
        })
        .unwrap();
        assert_eq!(remote.trim(), text_est[0], "binary EST rendering");
        let remote_stats = run(&Command::QueryRemote {
            port,
            request: vec!["STATS".into()],
            binary: true,
            timeout_ms: serve::DEFAULT_REMOTE_TIMEOUT_MS,
            retries: 0,
        })
        .unwrap();
        assert!(remote_stats.contains("protocol=binary"), "{remote_stats}");

        // Binary QUIT shuts the whole server down.
        let bye = run(&Command::QueryRemote {
            port,
            request: vec!["QUIT".into()],
            binary: true,
            timeout_ms: serve::DEFAULT_REMOTE_TIMEOUT_MS,
            retries: 0,
        })
        .unwrap();
        assert!(bye.starts_with("OK bye"), "{bye}");
        let report = server.join().unwrap();
        assert!(report.contains("queries over"), "{report}");
        for p in [stream_path, port_file] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn serve_drained_state_matches_sequential_bank() {
        use std::net::TcpStream;
        use std::time::{Duration, Instant};

        // The served sealed snapshot must equal the Algorithm-5 merged
        // export of a sequential ShardedSketch ingest of the same
        // configuration — the CLI-level face of the drain-equivalence
        // contract.
        let stream_path = tmp("serve-det.bin");
        run(&Command::Synth {
            updates: 30_000,
            flows: 1_000,
            seed: 4,
            output: stream_path.clone(),
        })
        .unwrap();
        let stream = streamfreq_workloads::load_binary(&stream_path).unwrap();
        let mut reference: streamfreq_core::ShardedSketch<u64> =
            streamfreq_core::ShardedSketch::builder(4, 128)
                .seed(11)
                .build()
                .unwrap();
        reference.update_batch(&stream);
        let merged = streamfreq_core::FreqSketch::from(reference.merged_with_capacity(512));

        let port_file = tmp("serve-det.port");
        let _ = std::fs::remove_file(&port_file);
        let options = serve::ServeOptions {
            port: 0,
            port_file: Some(port_file.clone()),
            k: 512,
            policy: PurgePolicy::smed(),
            seed: 11,
            threads: 3,
            shards: 4,
            passes: 1,
            snapshot_ms: 0,
            input: Some(stream_path.clone()),
            data_dir: None,
            fsync: streamfreq_core::FsyncPolicy::default(),
            checkpoint_ms: 0,
        };
        let server = std::thread::spawn(move || run(&Command::Serve(options)).unwrap());
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&port_file) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(Instant::now() < deadline, "no port file");
            std::thread::sleep(Duration::from_millis(5));
        };
        let mut conn = TcpStream::connect(addr.trim()).unwrap();
        loop {
            let stats = protocol_request(&mut conn, "STATS");
            if stats_field(&stats[0], "ingest_done") == 1 {
                break;
            }
            assert!(Instant::now() < deadline, "ingestion never finished");
            std::thread::sleep(Duration::from_millis(5));
        }
        for row in merged.top_k(10) {
            let est = protocol_request(&mut conn, &format!("EST {}", row.item));
            assert_eq!(
                est[0],
                format!(
                    "OK {} {} {}",
                    row.estimate, row.lower_bound, row.upper_bound
                ),
                "served estimate diverged from sequential merge for {}",
                row.item
            );
        }
        let stats = protocol_request(&mut conn, "STATS");
        assert_eq!(stats_field(&stats[0], "n"), merged.stream_weight());
        assert_eq!(
            stats_field(&stats[0], "max_error"),
            merged.maximum_error(),
            "served error band must match Theorem 5 merged export"
        );
        protocol_request(&mut conn, "QUIT");
        server.join().unwrap();
        for p in [stream_path, port_file] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn parses_serve_durability_and_store_commands() {
        let cmd = parse_args(&args(
            "serve -k 64 --input s.bin --data-dir /tmp/d --fsync bytes:1024 --checkpoint-ms 200",
        ))
        .unwrap();
        match cmd {
            Command::Serve(opts) => {
                assert_eq!(opts.data_dir, Some(PathBuf::from("/tmp/d")));
                assert_eq!(opts.fsync, streamfreq_core::FsyncPolicy::EveryBytes(1024));
                assert_eq!(opts.checkpoint_ms, 200);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse_args(&args("serve -k 64 --input s.bin --fsync always")).is_err());
        assert!(parse_args(&args("serve -k 64 --input s.bin --checkpoint-ms 5")).is_err());
        assert!(parse_args(&args(
            "serve -k 64 --input s.bin --data-dir d --fsync sometimes"
        ))
        .is_err());
        assert_eq!(
            parse_args(&args("checkpoint --data-dir /tmp/d")).unwrap(),
            Command::Checkpoint {
                data_dir: PathBuf::from("/tmp/d")
            }
        );
        assert_eq!(
            parse_args(&args("recover --data-dir /tmp/d --output out.sk")).unwrap(),
            Command::Recover {
                data_dir: PathBuf::from("/tmp/d"),
                output: PathBuf::from("out.sk"),
            }
        );
        assert!(parse_args(&args("checkpoint")).is_err());
        assert!(parse_args(&args("recover --data-dir d")).is_err());
    }

    /// Extracts `N = <n>` from a serve report.
    fn report_n(report: &str) -> u64 {
        report
            .split("N = ")
            .nth(1)
            .unwrap()
            .split([',', ' '])
            .next()
            .unwrap()
            .parse()
            .unwrap()
    }

    /// Starts a durable server thread and waits for the port handshake.
    fn start_durable_server(
        stream_path: &Path,
        data_dir: &Path,
        port_file: &Path,
        passes: u64,
    ) -> (std::thread::JoinHandle<String>, String, u16) {
        use std::time::{Duration, Instant};
        let _ = std::fs::remove_file(port_file);
        let options = serve::ServeOptions {
            port: 0,
            port_file: Some(port_file.to_path_buf()),
            k: 512,
            policy: PurgePolicy::smed(),
            seed: 9,
            threads: 2,
            shards: 4,
            passes,
            snapshot_ms: 10,
            input: Some(stream_path.to_path_buf()),
            data_dir: Some(data_dir.to_path_buf()),
            fsync: streamfreq_core::FsyncPolicy::Off,
            checkpoint_ms: 25,
        };
        let server = std::thread::spawn(move || run(&Command::Serve(options)).unwrap());
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(port_file) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(
                Instant::now() < deadline,
                "server never wrote the port file"
            );
            std::thread::sleep(Duration::from_millis(5));
        };
        let port: u16 = addr.rsplit(':').next().unwrap().parse().unwrap();
        (server, addr, port)
    }

    #[test]
    fn durable_serve_survives_restart_with_exact_n() {
        use std::net::TcpStream;
        use std::time::{Duration, Instant};

        let stream_path = tmp("durable-serve.bin");
        let data_dir = tmp("durable-serve-store");
        let port_file = tmp("durable-serve.port");
        let _ = std::fs::remove_dir_all(&data_dir);
        run(&Command::Synth {
            updates: 60_000,
            flows: 2_000,
            seed: 31,
            output: stream_path.clone(),
        })
        .unwrap();
        let pass_weight: u64 = streamfreq_workloads::load_binary(&stream_path)
            .unwrap()
            .iter()
            .map(|&(_, w)| w)
            .sum();

        // First run: many passes; we kill it mid-ingest via QUIT.
        let (server, addr, _) = start_durable_server(&stream_path, &data_dir, &port_file, 50);
        let mut conn = TcpStream::connect(addr.trim()).unwrap();
        let stats = protocol_request(&mut conn, "STATS");
        assert_eq!(
            stats_field(&stats[0], "ingest_done"),
            0,
            "first STATS should land mid-ingest: {stats:?}"
        );
        // Durable STATS reports the persistence gauges, including the
        // group-commit counters of the shared log.
        assert!(stats[0].contains("wal_bytes="), "{stats:?}");
        assert!(stats[0].contains("last_checkpoint_epoch="), "{stats:?}");
        assert!(stats[0].contains("fsync_policy=off"), "{stats:?}");
        assert!(stats[0].contains("protocol=text"), "{stats:?}");
        assert!(stats[0].contains("wal_flush_count="), "{stats:?}");
        assert!(stats[0].contains("wal_group_commit_batches="), "{stats:?}");
        assert!(stats[0].contains("avg_frames_per_fsync="), "{stats:?}");
        // The log-writer thread drains asynchronously, so the very first
        // STATS may race ahead of its first flush window — poll until it
        // lands rather than asserting on one snapshot.
        let flush_deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = protocol_request(&mut conn, "STATS");
            if stats_field(&stats[0], "wal_flush_count") > 0 {
                break;
            }
            assert!(
                Instant::now() < flush_deadline,
                "the writer thread never flushed: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // An explicit CKPT round succeeds and reports an epoch.
        let ckpt = protocol_request(&mut conn, "CKPT");
        assert!(ckpt[0].starts_with("OK epoch="), "{ckpt:?}");
        // Kill mid-ingest.
        let bye = protocol_request(&mut conn, "QUIT");
        assert_eq!(bye[0], "OK bye");
        let report = server.join().unwrap();
        assert!(report.contains("durable:"), "{report}");
        let sealed_n = report_n(&report);
        assert!(
            sealed_n > 0 && sealed_n.is_multiple_of(pass_weight),
            "{report}"
        );
        assert!(
            sealed_n < 50 * pass_weight,
            "QUIT should abort remaining passes: {report}"
        );

        // Second run against the same store: recovery + one more pass.
        let (server, addr, port) = start_durable_server(&stream_path, &data_dir, &port_file, 1);
        let mut conn = TcpStream::connect(addr.trim()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        let final_stats = loop {
            let stats = protocol_request(&mut conn, "STATS");
            assert!(
                stats_field(&stats[0], "n") >= sealed_n,
                "recovered N regressed: {stats:?}"
            );
            if stats_field(&stats[0], "ingest_done") == 1 {
                break stats;
            }
            assert!(Instant::now() < deadline, "ingestion never finished");
            std::thread::sleep(Duration::from_millis(5));
        };
        // The restart carried the first run's sealed N exactly.
        assert_eq!(
            stats_field(&final_stats[0], "n"),
            sealed_n + pass_weight,
            "exact N across restart: {final_stats:?}"
        );
        run(&Command::QueryRemote {
            port,
            request: vec!["QUIT".into()],
            binary: false,
            timeout_ms: serve::DEFAULT_REMOTE_TIMEOUT_MS,
            retries: 0,
        })
        .unwrap();
        let report = server.join().unwrap();
        let final_n = report_n(&report);
        assert_eq!(final_n, sealed_n + pass_weight);

        // Offline tooling against the store the server left behind.
        let info = run(&Command::Info(data_dir.clone())).unwrap();
        assert!(info.contains("durable store"), "{info}");
        assert!(info.contains("shards:            4"), "{info}");
        let ckpt_report = run(&Command::Checkpoint {
            data_dir: data_dir.clone(),
        })
        .unwrap();
        assert!(ckpt_report.contains("shard 3:"), "{ckpt_report}");
        let recovered_path = tmp("durable-serve-recovered.sk");
        let recover_report = run(&Command::Recover {
            data_dir: data_dir.clone(),
            output: recovered_path.clone(),
        })
        .unwrap();
        assert!(recover_report.contains("wrote"), "{recover_report}");
        let recovered = read_sketch(&recovered_path).unwrap();
        assert_eq!(recovered.stream_weight(), final_n);

        // `info` decodes the pieces of the store too.
        let shard0 = data_dir.join("shard-0000");
        let manifest_info = run(&Command::Info(shard0.join("MANIFEST"))).unwrap();
        assert!(
            manifest_info.contains("checkpoint epoch"),
            "{manifest_info}"
        );
        let ckpt_file = std::fs::read_dir(&shard0)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().starts_with("ckpt-"))
            .expect("checkpoint file exists");
        let ckpt_info = run(&Command::Info(ckpt_file.path())).unwrap();
        assert!(ckpt_info.contains("key type:          u64"), "{ckpt_info}");
        assert!(ckpt_info.contains("epoch:"), "{ckpt_info}");
        let store_info = run(&Command::Info(data_dir.join("STORE"))).unwrap();
        assert!(
            store_info.contains("sharded store metadata"),
            "{store_info}"
        );

        let _ = std::fs::remove_dir_all(&data_dir);
        for p in [stream_path, port_file, recovered_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn checkpoint_and_recover_on_single_sketch_store() {
        use streamfreq_core::{DurabilityOptions, DurableSketch, EngineConfig};
        let data_dir = tmp("single-store");
        let _ = std::fs::remove_dir_all(&data_dir);
        let (mut store, _) = DurableSketch::<u64>::open(
            &data_dir,
            EngineConfig::new(128).seed(4),
            DurabilityOptions::default(),
        )
        .unwrap();
        for i in 0..5_000u64 {
            store.update(i % 300, i % 11 + 1).unwrap();
        }
        let n = store.engine().stream_weight();
        drop(store); // crash: WAL only, no checkpoint

        let info = run(&Command::Info(data_dir.clone())).unwrap();
        assert!(info.contains("single sketch"), "{info}");

        let report = run(&Command::Checkpoint {
            data_dir: data_dir.clone(),
        })
        .unwrap();
        assert!(report.contains("epoch 1"), "{report}");

        let out = tmp("single-store.sk");
        let report = run(&Command::Recover {
            data_dir: data_dir.clone(),
            output: out.clone(),
        })
        .unwrap();
        assert!(report.contains("CheckpointOnly"), "{report}");
        assert_eq!(read_sketch(&out).unwrap().stream_weight(), n);

        // Recovering a non-store directory is a clean error.
        let empty = tmp("not-a-store");
        std::fs::create_dir_all(&empty).unwrap();
        let err = run(&Command::Recover {
            data_dir: empty.clone(),
            output: out.clone(),
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Persist(..)), "{err:?}");

        let _ = std::fs::remove_dir_all(&data_dir);
        let _ = std::fs::remove_dir_all(&empty);
        let _ = std::fs::remove_file(out);
    }

    #[test]
    fn corrupt_sketch_file_is_reported() {
        let path = tmp("corrupt.sk");
        std::fs::write(&path, b"not a sketch").unwrap();
        let err = run(&Command::Info(path.clone())).unwrap_err();
        assert!(matches!(err, CliError::Sketch(..)), "{err:?}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = run(&Command::Info(PathBuf::from("/nonexistent/x.sk"))).unwrap_err();
        assert!(matches!(err, CliError::Io(..)));
    }
}
