//! `streamfreq serve`: a loopback TCP server answering frequency
//! queries from [`streamfreq_core::ConcurrentSketch`] snapshots while
//! ingestion runs, plus the matching `query-remote` client.
//!
//! ## Protocols
//!
//! One port, two wire formats, chosen per connection by the first four
//! bytes the client sends. A connection opening with the magic `SFBP`
//! speaks the **pipelined binary protocol**; anything else falls back
//! to the original **newline text protocol** (what the CLI e2e tests
//! and `nc` use). Both are served by a single poll-based event loop —
//! no thread per connection — so thousands of pipelined requests in one
//! read are answered with one write.
//!
//! ### Text protocol
//!
//! Newline-delimited, one request per line, case-insensitive command
//! word:
//!
//! | request | response |
//! |---|---|
//! | `EST <item>` | `OK <estimate> <lower> <upper>` |
//! | `TOPK <n>` | `OK <m>` then `m` lines `<item> <estimate> <lower> <upper>` |
//! | `HH <phi> [nfp\|nfn]` | `OK <m>` then `m` rows (contract default `nfn`) |
//! | `STATS` | `OK epoch=<e> n=<N> counters=<c> max_error=<err> enqueued=<w> ingest_done=<0\|1> shards=<s> protocol=text` |
//! | `CKPT` | `OK epoch=<e>` after a coordinated checkpoint round (durable servers) |
//! | `QUIT` | `OK bye`, then the whole server shuts down gracefully |
//! | anything else | `ERR <reason>` |
//!
//! ### Binary protocol
//!
//! After the `SFBP` magic, both directions carry length-prefixed
//! frames: `[len u32le | tag u8 | payload]`, where `len` counts the tag
//! byte plus the payload. Request tags are opcodes; response tags are a
//! status byte (`0` = OK, `1` = ERR with a UTF-8 message payload).
//! Requests may be pipelined back to back without waiting for replies;
//! responses come back in request order.
//!
//! | opcode | request payload | OK payload |
//! |---|---|---|
//! | `0x01` EST | item `u64le` | estimate, lower, upper (`3 × u64le`) |
//! | `0x02` TOPK | n `u32le` | count `u32le`, then count × (item, est, lower, upper `u64le`) |
//! | `0x03` HH | phi `f64le`, contract `u8` (0 = nfn, 1 = nfp) | as TOPK |
//! | `0x04` STATS | empty | the STATS key=value text (with `protocol=binary`) |
//! | `0x05` CKPT | empty | epoch `u64le` |
//! | `0x06` QUIT | empty | `bye` |
//!
//! Every query answers from the most recent published snapshot: a
//! bounded-stale, Algorithm-5-merged view with the same certified error
//! bounds as `ShardedSketch::merged()`. `STATS` exposes the snapshot
//! epoch and the live enqueued weight so clients can observe staleness
//! directly. Queries never block ingestion (the snapshot swap is the
//! only synchronization point).
//!
//! ## Durable serving
//!
//! With `--data-dir`, the bank runs on one shared group-commit
//! write-ahead log plus per-shard checkpoints
//! (`streamfreq_core::persist`): starting against a directory holding
//! prior state **recovers it** (checkpoint ⊕ shared-log replay routed
//! by stream tag, Algorithm-5 merge across shards) before ingestion
//! begins, `CKPT` triggers a synchronous checkpoint round, and `STATS`
//! additionally reports `wal_bytes=<b> last_checkpoint_epoch=<e>
//! fsync_policy=<p> wal_flush_count=<f> wal_group_commit_batches=<g>
//! avg_frames_per_fsync=<a>`. `QUIT`'s graceful drain ends with a final
//! checkpoint round, so a clean shutdown restarts without replay.
//!
//! The server binds `127.0.0.1` only: this is an operational inspection
//! port, not an internet-facing service.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use streamfreq_core::cluster::wire as cluster_wire;
use streamfreq_core::persist::{self, DurabilityOptions, FsyncPolicy};
use streamfreq_core::{
    ConcurrentSketch, ConcurrentWriter, ErrorType, PurgePolicy, Row, SnapshotReader,
};
use streamfreq_workloads::load_binary;

use crate::CliError;

/// How long the event loop sleeps when no connection had bytes to move.
const POLL_INTERVAL: Duration = Duration::from_millis(1);

/// Upper bound on `TOPK n` so a typo cannot ask for a gigabyte of rows.
const MAX_TOPK: usize = 100_000;

/// The four bytes a binary-protocol client sends first.
pub const BINARY_MAGIC: &[u8; 4] = b"SFBP";

/// Sanity cap on one request frame. `INGEST` legitimately carries up to
/// [`MAX_INGEST_BATCH`](cluster_wire::MAX_INGEST_BATCH) update pairs, so
/// the header-level cap admits that; every other opcode's handler still
/// rejects payloads beyond its own few-scalar shape.
const MAX_REQUEST_FRAME: usize = 1 << 24;

/// Stop reading from a connection whose client is not draining replies
/// once this much output is queued; resume when it drains.
const WRITE_HIGH_WATER: usize = 8 << 20;

/// Per-tick read quantum per connection, so one firehose client cannot
/// starve the rest of the loop.
const READ_QUANTUM: usize = 1 << 20;

/// Binary request opcodes (also the `query-remote --binary` encoding).
/// `0x07..=0x0A` are the cluster extension: snapshot export for the
/// merging query tier, file shipping for replicas, and wire ingest for
/// the routing client.
pub(crate) mod opcode {
    pub const EST: u8 = 0x01;
    pub const TOPK: u8 = 0x02;
    pub const HH: u8 = 0x03;
    pub const STATS: u8 = 0x04;
    pub const CKPT: u8 = 0x05;
    pub const QUIT: u8 = 0x06;
    pub const SNAP: u8 = 0x07;
    pub const REPL: u8 = 0x08;
    pub const FETCH: u8 = 0x09;
    pub const INGEST: u8 = 0x0A;
}

/// Configuration of one `streamfreq serve` run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeOptions {
    /// Loopback port to bind (0 = ephemeral, see `port_file`).
    pub port: u16,
    /// If set, the actual bound address (`127.0.0.1:PORT`) is written
    /// here once the listener is ready — the handshake that lets
    /// scripts (and the e2e tests) use `--port 0`.
    pub port_file: Option<PathBuf>,
    /// Total counter budget `k` (split across shards; the served merged
    /// snapshot gets the full `k`, like `build --threads`).
    pub k: usize,
    /// Purge policy for every shard.
    pub policy: PurgePolicy,
    /// Base sampler seed (shard `s` uses `seed + s`).
    pub seed: u64,
    /// Writer threads for ingestion.
    pub threads: usize,
    /// Shard-bank width (0 = match `threads`).
    pub shards: usize,
    /// How many times the input stream is ingested end to end: the
    /// serving analogue of replaying a day of traffic. The drained
    /// total weight is `passes ×` the file's weight.
    pub passes: u64,
    /// Periodic snapshot publish interval in milliseconds (0 = publish
    /// only at drain).
    pub snapshot_ms: u64,
    /// Input stream file (16-byte `(item, weight)` records). `None`
    /// runs the server as a **cluster ingest node**: nothing is read
    /// from disk and updates arrive over the wire via the binary
    /// `INGEST` opcode instead (see `cluster-ingest`).
    pub input: Option<PathBuf>,
    /// Durable store directory: shared group-commit WAL + checkpoints,
    /// recovered on startup. `None` = in-memory serving.
    pub data_dir: Option<PathBuf>,
    /// WAL fsync policy when `data_dir` is set.
    pub fsync: FsyncPolicy,
    /// Periodic checkpoint interval in milliseconds when `data_dir` is
    /// set (0 = checkpoint only on `CKPT` and at drain).
    pub checkpoint_ms: u64,
}

/// Shared context each connection handler needs.
struct ServeCtx {
    reader: SnapshotReader<u64>,
    stop: Arc<AtomicBool>,
    queries: AtomicU64,
    num_shards: usize,
    /// The fsync-policy label when serving durably (`--data-dir`).
    fsync_label: Option<String>,
    /// The durable store directory, for `REPL`/`FETCH` file shipping.
    data_dir: Option<PathBuf>,
    /// Wire-ingest writer, present only in cluster-node mode (no
    /// `--input`). Taken (dropped) after the event loop exits so the
    /// ingest thread's `drain()` can join the shard workers.
    writer: Mutex<Option<ConcurrentWriter<u64>>>,
}

/// Runs the server until a client sends `QUIT`; returns the final text
/// report. See the [module docs](self) for the protocols.
///
/// # Errors
/// Returns [`CliError`] for unreadable inputs, invalid sketch
/// configuration, or socket failures.
pub fn run_serve(opts: &ServeOptions) -> Result<String, CliError> {
    let stream = match &opts.input {
        Some(input) => Some(load_binary(input).map_err(|e| CliError::Io(input.clone(), e))?),
        None => None,
    };
    // Error-context label: the input path, or a marker in node mode.
    let origin = opts
        .input
        .clone()
        .unwrap_or_else(|| PathBuf::from("<wire-ingest>"));
    let threads = opts.threads.max(1);
    let num_shards = if opts.shards > 0 {
        opts.shards
    } else {
        threads
    };
    let k_per_shard = (opts.k / num_shards).max(1);
    let mut builder = ConcurrentSketch::<u64>::builder(num_shards, k_per_shard)
        .policy(opts.policy)
        .seed(opts.seed)
        .merged_capacity(opts.k);
    if opts.snapshot_ms > 0 {
        builder = builder.publish_every(Duration::from_millis(opts.snapshot_ms));
    }
    let (sketch, recovered_weight) = match &opts.data_dir {
        None => {
            let sketch = builder.build().map_err(|e| CliError::Sketch(origin, e))?;
            (sketch, 0)
        }
        Some(dir) => {
            let durability = DurabilityOptions {
                fsync: opts.fsync,
                ..DurabilityOptions::default()
            };
            let interval =
                (opts.checkpoint_ms > 0).then(|| Duration::from_millis(opts.checkpoint_ms));
            let (sketch, _reports) = builder
                .build_durable(dir, durability, interval)
                .map_err(|e| CliError::Persist(dir.clone(), e))?;
            let recovered = sketch.snapshot().stream_weight();
            (sketch, recovered)
        }
    };
    let snapshot_reader = sketch.reader();
    // In node mode the event loop feeds updates into the bank itself.
    let wire_writer = opts.input.is_none().then(|| sketch.writer());

    let listener = TcpListener::bind(("127.0.0.1", opts.port))
        .map_err(|e| CliError::Net("127.0.0.1".into(), e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError::Net("127.0.0.1".into(), e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::Net("127.0.0.1".into(), e))?;
    if let Some(port_file) = &opts.port_file {
        std::fs::write(port_file, addr.to_string())
            .map_err(|e| CliError::Io(port_file.clone(), e))?;
    }

    let stop = Arc::new(AtomicBool::new(false));
    let ctx = ServeCtx {
        reader: snapshot_reader,
        stop: Arc::clone(&stop),
        queries: AtomicU64::new(0),
        num_shards,
        fsync_label: opts.data_dir.is_some().then(|| opts.fsync.label()),
        data_dir: opts.data_dir.clone(),
        writer: Mutex::new(wire_writer),
    };

    // Ingestion runs beside the event loop; queries observe its
    // progress through snapshots. QUIT aborts between passes. In node
    // mode (no input file) updates arrive through the event loop's
    // `INGEST` handler instead, so this thread only parks until stop
    // and then drains the bank for the final sealed snapshot.
    let ingest = {
        let stop = Arc::clone(&stop);
        let passes = opts.passes.max(1);
        std::thread::spawn(move || {
            let mut sketch = sketch;
            match stream {
                Some(stream) => {
                    for _ in 0..passes {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        sketch.ingest_slice_parallel(&stream, threads);
                    }
                }
                None => {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                }
            }
            sketch.drain();
        })
    };

    let mut connections: u64 = 0;
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];
    let mut accept_error: Option<CliError> = None;
    while !stop.load(Ordering::SeqCst) {
        let mut active = false;
        loop {
            match listener.accept() {
                Ok((sock, _)) => {
                    connections += 1;
                    active = true;
                    if sock.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = sock.set_nodelay(true);
                    conns.push(Conn::new(sock));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => {
                    // A fatal accept failure must still shut the server
                    // down gracefully: stop the loop and the ingest
                    // thread before surfacing the error, or they would
                    // outlive this call.
                    accept_error = Some(CliError::Net(addr.to_string(), e));
                    stop.store(true, Ordering::SeqCst);
                    break;
                }
            }
        }
        for conn in &mut conns {
            active |= conn.pump(&ctx, &mut scratch);
        }
        conns.retain(|c| !c.closed);
        if !active {
            std::thread::sleep(POLL_INTERVAL);
        }
    }
    // Final flush so the `OK bye` (and any other queued replies) land
    // before the sockets drop.
    for conn in &mut conns {
        conn.flush_best_effort();
    }
    drop(conns);
    // The wire writer holds shard-channel senders; it must drop before
    // the ingest thread's drain() can join the shard workers.
    ctx.writer.lock().expect("writer mutex poisoned").take();
    ingest.join().expect("ingest thread panicked");
    if let Some(error) = accept_error {
        return Err(error);
    }

    let snapshot = ctx.reader.snapshot();
    let mut report = format!(
        "served {} queries over {} connections on {}\n\
         final snapshot: epoch {}, N = {}, {} counters, max error ±{}\n",
        ctx.queries.load(Ordering::SeqCst),
        connections,
        addr,
        snapshot.epoch(),
        snapshot.stream_weight(),
        snapshot.num_counters(),
        snapshot.maximum_error()
    );
    if let Some(dir) = &opts.data_dir {
        report.push_str(&format!(
            "durable: {} (recovered N = {recovered_weight}, \
             last checkpoint epoch {}, fsync {})\n",
            dir.display(),
            ctx.reader.last_checkpoint_epoch(),
            opts.fsync.label()
        ));
    }
    Ok(report)
}

/// Which wire format a connection speaks, decided by its first bytes.
enum Mode {
    /// Not enough bytes yet to tell.
    Sniff,
    /// Newline-delimited text (the original protocol).
    Text,
    /// `SFBP` length-prefixed frames.
    Binary,
}

/// One client connection in the event loop: buffered input not yet
/// parsed, buffered output not yet written.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Written prefix of `wbuf` (compacted when fully drained).
    wpos: usize,
    mode: Mode,
    /// Peer sent EOF: process what is buffered, flush, then close.
    eof: bool,
    /// Flush the remaining `wbuf` and close (QUIT or protocol error).
    close_after_flush: bool,
    closed: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            mode: Mode::Sniff,
            eof: false,
            close_after_flush: false,
            closed: false,
        }
    }

    /// One event-loop turn: write what is pending, read what arrived,
    /// answer every complete request. Returns true if any bytes moved.
    fn pump(&mut self, ctx: &ServeCtx, scratch: &mut [u8]) -> bool {
        if self.closed {
            return false;
        }
        let mut active = self.try_write();
        if self.closed {
            return active;
        }
        // Read up to a quantum, unless the peer is not draining replies.
        if !self.eof && !self.close_after_flush && self.pending_write() < WRITE_HIGH_WATER {
            let mut read = 0usize;
            while read < READ_QUANTUM {
                match self.stream.read(scratch) {
                    Ok(0) => {
                        self.eof = true;
                        break;
                    }
                    Ok(n) => {
                        self.rbuf.extend_from_slice(&scratch[..n]);
                        read += n;
                        active = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.closed = true;
                        return active;
                    }
                }
            }
        }
        self.process(ctx);
        active |= self.try_write();
        if self.eof && self.pending_write() == 0 {
            self.closed = true;
        }
        active
    }

    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Drains as much of `wbuf` as the socket accepts right now.
    fn try_write(&mut self) -> bool {
        let mut active = false;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.closed = true;
                    return active;
                }
                Ok(n) => {
                    self.wpos += n;
                    active = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.closed = true;
                    return active;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            if self.close_after_flush {
                self.closed = true;
            }
        }
        active
    }

    /// Blocking last-chance flush used at server shutdown.
    fn flush_best_effort(&mut self) {
        if self.closed || self.pending_write() == 0 {
            return;
        }
        let _ = self.stream.set_nonblocking(false);
        let _ = self
            .stream
            .set_write_timeout(Some(Duration::from_millis(500)));
        let _ = self.stream.write_all(&self.wbuf[self.wpos..]);
        let _ = self.stream.flush();
    }

    /// Parses and answers every complete request currently buffered.
    fn process(&mut self, ctx: &ServeCtx) {
        if matches!(self.mode, Mode::Sniff) {
            if self.rbuf.len() >= BINARY_MAGIC.len() {
                if &self.rbuf[..BINARY_MAGIC.len()] == BINARY_MAGIC {
                    self.rbuf.drain(..BINARY_MAGIC.len());
                    self.mode = Mode::Binary;
                } else {
                    self.mode = Mode::Text;
                }
            } else if self.rbuf.contains(&b'\n') || self.eof {
                // A full (short) line arrived before four bytes did, or
                // the peer is done sending: this is not the magic.
                self.mode = Mode::Text;
            } else {
                return;
            }
        }
        match self.mode {
            Mode::Text => self.process_text(ctx),
            Mode::Binary => self.process_binary(ctx),
            Mode::Sniff => unreachable!("mode decided above"),
        }
    }

    fn process_text(&mut self, ctx: &ServeCtx) {
        let mut consumed = 0usize;
        while let Some(nl) = self.rbuf[consumed..].iter().position(|&b| b == b'\n') {
            let line = String::from_utf8_lossy(&self.rbuf[consumed..consumed + nl]).into_owned();
            consumed += nl + 1;
            let (reply, quit) = handle_request(line.trim(), ctx);
            self.wbuf.extend_from_slice(reply.as_bytes());
            if quit {
                ctx.stop.store(true, Ordering::SeqCst);
                self.close_after_flush = true;
                break;
            }
        }
        // At EOF a trailing unterminated line still counts as a request
        // (parity with a client that forgot the final newline).
        if self.eof && !self.close_after_flush && consumed < self.rbuf.len() {
            let line = String::from_utf8_lossy(&self.rbuf[consumed..]).into_owned();
            consumed = self.rbuf.len();
            if !line.trim().is_empty() {
                let (reply, quit) = handle_request(line.trim(), ctx);
                self.wbuf.extend_from_slice(reply.as_bytes());
                if quit {
                    ctx.stop.store(true, Ordering::SeqCst);
                    self.close_after_flush = true;
                }
            }
        }
        self.rbuf.drain(..consumed);
    }

    fn process_binary(&mut self, ctx: &ServeCtx) {
        let mut consumed = 0usize;
        while self.rbuf.len() - consumed >= 4 {
            let header: [u8; 4] = self.rbuf[consumed..consumed + 4].try_into().unwrap();
            let len = u32::from_le_bytes(header) as usize;
            if len == 0 || len > MAX_REQUEST_FRAME {
                push_err_frame(&mut self.wbuf, &format!("bad frame length {len}"));
                self.close_after_flush = true;
                consumed = self.rbuf.len();
                break;
            }
            if self.rbuf.len() - consumed < 4 + len {
                break;
            }
            let frame = &self.rbuf[consumed + 4..consumed + 4 + len];
            consumed += 4 + len;
            if handle_binary_request(frame[0], &frame[1..], ctx, &mut self.wbuf) {
                ctx.stop.store(true, Ordering::SeqCst);
                self.close_after_flush = true;
                break;
            }
        }
        self.rbuf.drain(..consumed);
    }
}

/// Appends a response frame: `[len u32le | status | payload]`, where
/// `build` writes the payload directly into the output buffer.
fn push_frame(out: &mut Vec<u8>, status: u8, build: impl FnOnce(&mut Vec<u8>)) {
    let len_at = out.len();
    out.extend_from_slice(&[0; 4]);
    out.push(status);
    build(out);
    let len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Appends an ERR frame carrying a UTF-8 message.
fn push_err_frame(out: &mut Vec<u8>, message: &str) {
    push_frame(out, 1, |p| p.extend_from_slice(message.as_bytes()));
}

/// Appends one 32-byte result row to a binary payload.
fn push_row(payload: &mut Vec<u8>, row: &Row<u64>) {
    payload.extend_from_slice(&row.item.to_le_bytes());
    payload.extend_from_slice(&row.estimate.to_le_bytes());
    payload.extend_from_slice(&row.lower_bound.to_le_bytes());
    payload.extend_from_slice(&row.upper_bound.to_le_bytes());
}

/// Answers one binary request frame, appending the response frame to
/// `out`. Returns true when the server should shut down (QUIT).
fn handle_binary_request(op: u8, payload: &[u8], ctx: &ServeCtx, out: &mut Vec<u8>) -> bool {
    match op {
        opcode::EST => {
            ctx.queries.fetch_add(1, Ordering::Relaxed);
            let Ok(item) = <[u8; 8]>::try_from(payload) else {
                push_err_frame(out, "EST payload must be 8 bytes");
                return false;
            };
            let item = u64::from_le_bytes(item);
            let snap = ctx.reader.snapshot();
            push_frame(out, 0, |p| {
                p.extend_from_slice(&snap.estimate(&item).to_le_bytes());
                p.extend_from_slice(&snap.lower_bound(&item).to_le_bytes());
                p.extend_from_slice(&snap.upper_bound(&item).to_le_bytes());
            });
        }
        opcode::TOPK => {
            ctx.queries.fetch_add(1, Ordering::Relaxed);
            let Ok(n) = <[u8; 4]>::try_from(payload) else {
                push_err_frame(out, "TOPK payload must be 4 bytes");
                return false;
            };
            let n = u32::from_le_bytes(n) as usize;
            if n == 0 || n > MAX_TOPK {
                push_err_frame(out, &format!("row count {n} outside 1..={MAX_TOPK}"));
                return false;
            }
            let rows = ctx.reader.snapshot().top_k(n);
            push_frame(out, 0, |p| {
                p.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in &rows {
                    push_row(p, row);
                }
            });
        }
        opcode::HH => {
            ctx.queries.fetch_add(1, Ordering::Relaxed);
            let Ok(raw) = <[u8; 9]>::try_from(payload) else {
                push_err_frame(out, "HH payload must be 9 bytes");
                return false;
            };
            let phi = f64::from_le_bytes(raw[..8].try_into().unwrap());
            let contract = match raw[8] {
                0 => ErrorType::NoFalseNegatives,
                1 => ErrorType::NoFalsePositives,
                other => {
                    push_err_frame(out, &format!("bad HH contract byte {other}"));
                    return false;
                }
            };
            if !(0.0..=1.0).contains(&phi) {
                push_err_frame(out, &format!("phi {phi} outside [0, 1]"));
                return false;
            }
            let rows = ctx.reader.snapshot().heavy_hitters(phi, contract);
            push_frame(out, 0, |p| {
                p.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in &rows {
                    push_row(p, row);
                }
            });
        }
        opcode::STATS => {
            ctx.queries.fetch_add(1, Ordering::Relaxed);
            let body = stats_body(ctx, "binary");
            push_frame(out, 0, |p| p.extend_from_slice(body.as_bytes()));
        }
        opcode::CKPT => {
            ctx.queries.fetch_add(1, Ordering::Relaxed);
            if ctx.fsync_label.is_none() {
                push_err_frame(out, "server is not durable (start with --data-dir)");
                return false;
            }
            match ctx.reader.request_checkpoint(Duration::from_secs(30)) {
                Some(epoch) => push_frame(out, 0, |p| p.extend_from_slice(&epoch.to_le_bytes())),
                None => push_err_frame(out, "checkpoint unavailable (draining?)"),
            }
        }
        opcode::SNAP => {
            ctx.queries.fetch_add(1, Ordering::Relaxed);
            if !payload.is_empty() {
                push_err_frame(out, "SNAP takes no payload");
                return false;
            }
            let snap = ctx.reader.snapshot();
            let body = cluster_wire::encode_snapshot(snap.epoch(), snap.is_sealed(), snap.engine());
            push_frame(out, 0, |p| p.extend_from_slice(&body));
        }
        opcode::REPL => {
            ctx.queries.fetch_add(1, Ordering::Relaxed);
            if !payload.is_empty() {
                push_err_frame(out, "REPL takes no payload");
                return false;
            }
            let Some(dir) = &ctx.data_dir else {
                push_err_frame(out, "server is not durable (start with --data-dir)");
                return false;
            };
            // Push buffered wire writes into the bank and force the WAL
            // to disk first, so the manifest advertises a durable state
            // at least as fresh as every acknowledged INGEST.
            if let Some(writer) = ctx.writer.lock().expect("writer mutex poisoned").as_mut() {
                writer.flush();
            }
            if let Err(e) = ctx.reader.sync() {
                push_err_frame(out, &format!("wal sync failed: {e}"));
                return false;
            }
            match persist::export_manifest(dir).and_then(|files| {
                cluster_wire::encode_file_list(&files)
                    .map_err(streamfreq_core::PersistError::Sketch)
            }) {
                Ok(body) => push_frame(out, 0, |p| p.extend_from_slice(&body)),
                Err(e) => push_err_frame(out, &format!("manifest export failed: {e}")),
            }
        }
        opcode::FETCH => {
            ctx.queries.fetch_add(1, Ordering::Relaxed);
            let Some(dir) = &ctx.data_dir else {
                push_err_frame(out, "server is not durable (start with --data-dir)");
                return false;
            };
            let (offset, rel) = match cluster_wire::decode_fetch_request(payload) {
                Ok(req) => req,
                Err(e) => {
                    push_err_frame(out, &format!("bad FETCH payload: {e}"));
                    return false;
                }
            };
            match persist::read_file_range(dir, &rel, offset) {
                Ok(bytes) => push_frame(out, 0, |p| p.extend_from_slice(&bytes)),
                Err(e) => push_err_frame(out, &format!("fetch failed: {e}")),
            }
        }
        opcode::INGEST => {
            ctx.queries.fetch_add(1, Ordering::Relaxed);
            let batch = match cluster_wire::decode_ingest_batch(payload) {
                Ok(batch) => batch,
                Err(e) => {
                    push_err_frame(out, &format!("bad INGEST payload: {e}"));
                    return false;
                }
            };
            let mut guard = ctx.writer.lock().expect("writer mutex poisoned");
            let Some(writer) = guard.as_mut() else {
                push_err_frame(
                    out,
                    "wire ingest disabled (server was started with --input)",
                );
                return false;
            };
            for &(item, weight) in &batch {
                writer.write(item, weight);
            }
            writer.flush();
            push_frame(out, 0, |p| {
                p.extend_from_slice(&(batch.len() as u64).to_le_bytes());
            });
        }
        opcode::QUIT => {
            push_frame(out, 0, |p| p.extend_from_slice(b"bye"));
            return true;
        }
        other => push_err_frame(out, &format!("unknown opcode 0x{other:02x}")),
    }
    false
}

/// The `STATS` key=value body shared by both protocols.
fn stats_body(ctx: &ServeCtx, protocol: &str) -> String {
    let snap = ctx.reader.snapshot();
    let mut body = format!(
        "epoch={} n={} counters={} max_error={} enqueued={} \
         ingest_done={} shards={} protocol={protocol}",
        snap.epoch(),
        snap.stream_weight(),
        snap.num_counters(),
        snap.maximum_error(),
        ctx.reader.enqueued_weight(),
        u8::from(ctx.reader.is_sealed()),
        ctx.num_shards
    );
    if let Some(fsync) = &ctx.fsync_label {
        body.push_str(&format!(
            " wal_bytes={} last_checkpoint_epoch={} fsync_policy={fsync}",
            ctx.reader.wal_bytes(),
            ctx.reader.last_checkpoint_epoch()
        ));
        if let Some(wal) = ctx.reader.wal_stats() {
            body.push_str(&format!(
                " wal_flush_count={} wal_group_commit_batches={} avg_frames_per_fsync={:.1}",
                wal.flush_count,
                wal.group_commit_batches,
                wal.avg_frames_per_fsync()
            ));
        }
    }
    body
}

/// Formats one result row of the text protocol.
fn protocol_row(row: &Row<u64>) -> String {
    format!(
        "{} {} {} {}\n",
        row.item, row.estimate, row.lower_bound, row.upper_bound
    )
}

/// Answers one text request line. Returns the reply text and whether
/// the server should shut down.
fn handle_request(request: &str, ctx: &ServeCtx) -> (String, bool) {
    let tokens: Vec<&str> = request.split_whitespace().collect();
    let Some(command) = tokens.first() else {
        return ("ERR empty request\n".into(), false);
    };
    match command.to_ascii_uppercase().as_str() {
        "EST" => {
            ctx.queries.fetch_add(1, Ordering::Relaxed);
            let [_, item] = tokens[..] else {
                return ("ERR usage: EST <item>\n".into(), false);
            };
            let Ok(item) = item.parse::<u64>() else {
                return (format!("ERR bad item `{item}`\n"), false);
            };
            let snap = ctx.reader.snapshot();
            (
                format!(
                    "OK {} {} {}\n",
                    snap.estimate(&item),
                    snap.lower_bound(&item),
                    snap.upper_bound(&item)
                ),
                false,
            )
        }
        "TOPK" => {
            ctx.queries.fetch_add(1, Ordering::Relaxed);
            let [_, n] = tokens[..] else {
                return ("ERR usage: TOPK <n>\n".into(), false);
            };
            let Ok(n) = n.parse::<usize>() else {
                return (format!("ERR bad row count `{n}`\n"), false);
            };
            if n == 0 || n > MAX_TOPK {
                return (format!("ERR row count {n} outside 1..={MAX_TOPK}\n"), false);
            }
            let rows = ctx.reader.snapshot().top_k(n);
            let mut reply = format!("OK {}\n", rows.len());
            for row in &rows {
                reply.push_str(&protocol_row(row));
            }
            (reply, false)
        }
        "HH" => {
            ctx.queries.fetch_add(1, Ordering::Relaxed);
            let (phi, contract) = match tokens[..] {
                [_, phi] => (phi, ErrorType::NoFalseNegatives),
                [_, phi, "nfp"] => (phi, ErrorType::NoFalsePositives),
                [_, phi, "nfn"] => (phi, ErrorType::NoFalseNegatives),
                _ => return ("ERR usage: HH <phi> [nfp|nfn]\n".into(), false),
            };
            let Ok(phi) = phi.parse::<f64>() else {
                return (format!("ERR bad phi `{phi}`\n"), false);
            };
            if !(0.0..=1.0).contains(&phi) {
                return (format!("ERR phi {phi} outside [0, 1]\n"), false);
            }
            let rows = ctx.reader.snapshot().heavy_hitters(phi, contract);
            let mut reply = format!("OK {}\n", rows.len());
            for row in &rows {
                reply.push_str(&protocol_row(row));
            }
            (reply, false)
        }
        "STATS" => {
            ctx.queries.fetch_add(1, Ordering::Relaxed);
            (format!("OK {}\n", stats_body(ctx, "text")), false)
        }
        "CKPT" => {
            ctx.queries.fetch_add(1, Ordering::Relaxed);
            if ctx.fsync_label.is_none() {
                return (
                    "ERR server is not durable (start with --data-dir)\n".into(),
                    false,
                );
            }
            match ctx.reader.request_checkpoint(Duration::from_secs(30)) {
                Some(epoch) => (format!("OK epoch={epoch}\n"), false),
                None => ("ERR checkpoint unavailable (draining?)\n".into(), false),
            }
        }
        "QUIT" => ("OK bye\n".into(), true),
        other => (format!("ERR unknown command `{other}`\n"), false),
    }
}

/// Encodes one request (the `query-remote` token form) as a binary
/// frame appended to `out`.
///
/// # Errors
/// Returns a usage error for malformed tokens.
pub fn encode_binary_request(tokens: &[String], out: &mut Vec<u8>) -> Result<(), CliError> {
    let usage = |msg: &str| CliError::Usage(msg.into());
    let Some(command) = tokens.first() else {
        return Err(usage("empty request"));
    };
    let mut frame: Vec<u8> = Vec::with_capacity(16);
    match command.to_ascii_uppercase().as_str() {
        "EST" => {
            let [_, item] = tokens else {
                return Err(usage("usage: EST <item>"));
            };
            let item: u64 = item.parse().map_err(|_| usage("bad EST item"))?;
            frame.push(opcode::EST);
            frame.extend_from_slice(&item.to_le_bytes());
        }
        "TOPK" => {
            let [_, n] = tokens else {
                return Err(usage("usage: TOPK <n>"));
            };
            let n: u32 = n.parse().map_err(|_| usage("bad TOPK row count"))?;
            frame.push(opcode::TOPK);
            frame.extend_from_slice(&n.to_le_bytes());
        }
        "HH" => {
            let (phi, contract) = match tokens {
                [_, phi] => (phi, 0u8),
                [_, phi, c] if c == "nfp" => (phi, 1),
                [_, phi, c] if c == "nfn" => (phi, 0),
                _ => return Err(usage("usage: HH <phi> [nfp|nfn]")),
            };
            let phi: f64 = phi.parse().map_err(|_| usage("bad HH phi"))?;
            frame.push(opcode::HH);
            frame.extend_from_slice(&phi.to_le_bytes());
            frame.push(contract);
        }
        "STATS" => frame.push(opcode::STATS),
        "CKPT" => frame.push(opcode::CKPT),
        "QUIT" => frame.push(opcode::QUIT),
        other => return Err(usage(&format!("unknown command `{other}`"))),
    }
    out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame);
    Ok(())
}

/// Reads one response frame `[len u32le | status | payload]`.
fn read_response_frame(reader: &mut impl Read) -> std::io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; 4];
    reader.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            "empty response frame",
        ));
    }
    let mut frame = vec![0u8; len];
    reader.read_exact(&mut frame)?;
    let payload = frame.split_off(1);
    Ok((frame[0], payload))
}

/// Renders a binary response in the text protocol's shape, so the two
/// client modes print interchangeably.
fn format_binary_response(command: &str, status: u8, payload: &[u8]) -> String {
    if status != 0 {
        return format!("ERR {}\n", String::from_utf8_lossy(payload));
    }
    let rows_text = |payload: &[u8]| -> Option<String> {
        let count = u32::from_le_bytes(payload.get(..4)?.try_into().ok()?) as usize;
        let mut text = format!("OK {count}\n");
        let mut rest = payload.get(4..)?;
        for _ in 0..count {
            let row: [u8; 32] = rest.get(..32)?.try_into().ok()?;
            rest = &rest[32..];
            let field = |i: usize| u64::from_le_bytes(row[i * 8..(i + 1) * 8].try_into().unwrap());
            text.push_str(&format!(
                "{} {} {} {}\n",
                field(0),
                field(1),
                field(2),
                field(3)
            ));
        }
        Some(text)
    };
    let rendered = match command {
        "EST" => <[u8; 24]>::try_from(payload).ok().map(|raw| {
            let field = |i: usize| u64::from_le_bytes(raw[i * 8..(i + 1) * 8].try_into().unwrap());
            format!("OK {} {} {}\n", field(0), field(1), field(2))
        }),
        "TOPK" | "HH" => rows_text(payload),
        "STATS" => Some(format!("OK {}\n", String::from_utf8_lossy(payload))),
        "CKPT" => <[u8; 8]>::try_from(payload)
            .ok()
            .map(|raw| format!("OK epoch={}\n", u64::from_le_bytes(raw))),
        "QUIT" => Some(format!("OK {}\n", String::from_utf8_lossy(payload))),
        _ => None,
    };
    rendered.unwrap_or_else(|| "ERR malformed response payload\n".into())
}

/// Connects to `addr` with a connect timeout, retrying failed
/// *connection attempts* up to `retries` extra times with doubling
/// backoff (50 ms, 100 ms, … capped at 1 s). Only establishment is
/// retried — once connected, a request is sent at most once, so a
/// timeout mid-exchange can never double-apply an `INGEST`. The
/// read/write timeouts are installed on the returned stream.
pub(crate) fn connect_with_retry(
    addr: &SocketAddr,
    timeout: Duration,
    retries: u32,
) -> std::io::Result<TcpStream> {
    let mut backoff = Duration::from_millis(50);
    let mut attempt = 0u32;
    loop {
        match TcpStream::connect_timeout(addr, timeout) {
            Ok(stream) => {
                stream.set_read_timeout(Some(timeout))?;
                stream.set_write_timeout(Some(timeout))?;
                return Ok(stream);
            }
            Err(e) if attempt >= retries => return Err(e),
            Err(_) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_secs(1));
                attempt += 1;
            }
        }
    }
}

/// The default `query-remote` connect/read/write timeout.
pub const DEFAULT_REMOTE_TIMEOUT_MS: u64 = 10_000;

/// Sends one protocol request to a local `streamfreq serve` instance
/// and returns the full response (header plus any rows). With `binary`
/// set it speaks the `SFBP` framed protocol and renders the reply in
/// the text shape, so both modes print interchangeably.
///
/// `timeout_ms` bounds connecting *and* every read/write (0 = wait
/// forever, the historical behavior); `retries` re-attempts failed
/// connections with doubling backoff. A server that accepts the
/// connection but never replies now yields a timeout error instead of
/// hanging the client for good.
///
/// # Errors
/// Returns [`CliError::Net`] if the connection or the exchange fails
/// or times out.
pub fn run_query_remote(
    port: u16,
    request: &[String],
    binary: bool,
    timeout_ms: u64,
    retries: u32,
) -> Result<String, CliError> {
    let addr = format!("127.0.0.1:{port}");
    let net = |e: std::io::Error| CliError::Net(addr.clone(), e);
    let socket_addr: SocketAddr = addr.parse().map_err(|_| {
        CliError::Net(
            addr.clone(),
            std::io::Error::new(ErrorKind::InvalidInput, "bad address"),
        )
    })?;
    let mut conn = if timeout_ms > 0 {
        connect_with_retry(&socket_addr, Duration::from_millis(timeout_ms), retries).map_err(net)?
    } else {
        TcpStream::connect(&addr).map_err(net)?
    };
    if binary {
        let mut wire = BINARY_MAGIC.to_vec();
        encode_binary_request(request, &mut wire)?;
        conn.write_all(&wire).map_err(net)?;
        let (status, payload) = read_response_frame(&mut conn).map_err(net)?;
        let command = request
            .first()
            .map(|c| c.to_ascii_uppercase())
            .unwrap_or_default();
        return Ok(format_binary_response(&command, status, &payload));
    }
    let line = request.join(" ");
    conn.write_all(format!("{line}\n").as_bytes())
        .map_err(net)?;
    let mut reader = BufReader::new(conn.try_clone().map_err(net)?);
    let mut first = String::new();
    reader.read_line(&mut first).map_err(net)?;
    let mut out = first.clone();
    // Multi-row responses announce their row count in the header.
    let is_multi_row = matches!(
        request.first().map(|c| c.to_ascii_uppercase()).as_deref(),
        Some("TOPK" | "HH")
    );
    if is_multi_row {
        if let Some(rows) = first
            .strip_prefix("OK ")
            .and_then(|rest| rest.trim().parse::<usize>().ok())
        {
            for _ in 0..rows {
                let mut row = String::new();
                reader.read_line(&mut row).map_err(net)?;
                out.push_str(&row);
            }
        }
    }
    Ok(out)
}
