//! `streamfreq serve`: a loopback TCP server answering frequency
//! queries from [`streamfreq_core::ConcurrentSketch`] snapshots while
//! ingestion runs, plus the matching `query-remote` client.
//!
//! ## Protocol
//!
//! Newline-delimited text over TCP, one request per line, case-
//! insensitive command word:
//!
//! | request | response |
//! |---|---|
//! | `EST <item>` | `OK <estimate> <lower> <upper>` |
//! | `TOPK <n>` | `OK <m>` then `m` lines `<item> <estimate> <lower> <upper>` |
//! | `HH <phi> [nfp\|nfn]` | `OK <m>` then `m` rows (contract default `nfn`) |
//! | `STATS` | `OK epoch=<e> n=<N> counters=<c> max_error=<err> enqueued=<w> ingest_done=<0\|1> shards=<s>` |
//! | `CKPT` | `OK epoch=<e>` after a coordinated checkpoint round (durable servers) |
//! | `QUIT` | `OK bye`, then the whole server shuts down gracefully |
//! | anything else | `ERR <reason>` |
//!
//! Every query answers from the most recent published snapshot: a
//! bounded-stale, Algorithm-5-merged view with the same certified error
//! bounds as `ShardedSketch::merged()`. `STATS` exposes the snapshot
//! epoch and the live enqueued weight so clients can observe staleness
//! directly. Queries never block ingestion (the snapshot swap is the
//! only synchronization point).
//!
//! ## Durable serving
//!
//! With `--data-dir`, the bank runs on per-shard write-ahead logs and
//! checkpoints (`streamfreq_core::persist`): starting against a
//! directory holding prior state **recovers it** (checkpoint ⊕ WAL
//! replay per shard, Algorithm-5 merge across shards) before ingestion
//! begins, `CKPT` triggers a synchronous checkpoint round, and `STATS`
//! additionally reports `wal_bytes=<b> last_checkpoint_epoch=<e>
//! fsync_policy=<p>`. `QUIT`'s graceful drain ends with a final
//! per-shard checkpoint, so a clean shutdown restarts without replay.
//!
//! The server binds `127.0.0.1` only: this is an operational inspection
//! port, not an internet-facing service.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use streamfreq_core::persist::{DurabilityOptions, FsyncPolicy};
use streamfreq_core::{ConcurrentSketch, ErrorType, PurgePolicy, SnapshotReader};
use streamfreq_workloads::load_binary;

use crate::CliError;

/// How long the accept loop sleeps when no connection is pending, and
/// the per-connection read timeout used to poll the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Upper bound on `TOPK n` so a typo cannot ask for a gigabyte of rows.
const MAX_TOPK: usize = 100_000;

/// Configuration of one `streamfreq serve` run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeOptions {
    /// Loopback port to bind (0 = ephemeral, see `port_file`).
    pub port: u16,
    /// If set, the actual bound address (`127.0.0.1:PORT`) is written
    /// here once the listener is ready — the handshake that lets
    /// scripts (and the e2e tests) use `--port 0`.
    pub port_file: Option<PathBuf>,
    /// Total counter budget `k` (split across shards; the served merged
    /// snapshot gets the full `k`, like `build --threads`).
    pub k: usize,
    /// Purge policy for every shard.
    pub policy: PurgePolicy,
    /// Base sampler seed (shard `s` uses `seed + s`).
    pub seed: u64,
    /// Writer threads for ingestion.
    pub threads: usize,
    /// Shard-bank width (0 = match `threads`).
    pub shards: usize,
    /// How many times the input stream is ingested end to end: the
    /// serving analogue of replaying a day of traffic. The drained
    /// total weight is `passes ×` the file's weight.
    pub passes: u64,
    /// Periodic snapshot publish interval in milliseconds (0 = publish
    /// only at drain).
    pub snapshot_ms: u64,
    /// Input stream file (16-byte `(item, weight)` records).
    pub input: PathBuf,
    /// Durable store directory: per-shard WALs + checkpoints, recovered
    /// on startup. `None` = in-memory serving (the pre-durability mode).
    pub data_dir: Option<PathBuf>,
    /// WAL fsync policy when `data_dir` is set.
    pub fsync: FsyncPolicy,
    /// Periodic checkpoint interval in milliseconds when `data_dir` is
    /// set (0 = checkpoint only on `CKPT` and at drain).
    pub checkpoint_ms: u64,
}

/// Shared context each connection handler needs.
struct ServeCtx {
    reader: SnapshotReader<u64>,
    stop: Arc<AtomicBool>,
    queries: AtomicU64,
    num_shards: usize,
    /// The fsync-policy label when serving durably (`--data-dir`).
    fsync_label: Option<String>,
}

/// Runs the server until a client sends `QUIT`; returns the final text
/// report. See the [module docs](self) for the protocol.
///
/// # Errors
/// Returns [`CliError`] for unreadable inputs, invalid sketch
/// configuration, or socket failures.
pub fn run_serve(opts: &ServeOptions) -> Result<String, CliError> {
    let stream = load_binary(&opts.input).map_err(|e| CliError::Io(opts.input.clone(), e))?;
    let threads = opts.threads.max(1);
    let num_shards = if opts.shards > 0 {
        opts.shards
    } else {
        threads
    };
    let k_per_shard = (opts.k / num_shards).max(1);
    let mut builder = ConcurrentSketch::<u64>::builder(num_shards, k_per_shard)
        .policy(opts.policy)
        .seed(opts.seed)
        .merged_capacity(opts.k);
    if opts.snapshot_ms > 0 {
        builder = builder.publish_every(Duration::from_millis(opts.snapshot_ms));
    }
    let (sketch, recovered_weight) = match &opts.data_dir {
        None => {
            let sketch = builder
                .build()
                .map_err(|e| CliError::Sketch(opts.input.clone(), e))?;
            (sketch, 0)
        }
        Some(dir) => {
            let durability = DurabilityOptions {
                fsync: opts.fsync,
                ..DurabilityOptions::default()
            };
            let interval =
                (opts.checkpoint_ms > 0).then(|| Duration::from_millis(opts.checkpoint_ms));
            let (sketch, _reports) = builder
                .build_durable(dir, durability, interval)
                .map_err(|e| CliError::Persist(dir.clone(), e))?;
            let recovered = sketch.snapshot().stream_weight();
            (sketch, recovered)
        }
    };
    let snapshot_reader = sketch.reader();

    let listener = TcpListener::bind(("127.0.0.1", opts.port))
        .map_err(|e| CliError::Net("127.0.0.1".into(), e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError::Net("127.0.0.1".into(), e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::Net("127.0.0.1".into(), e))?;
    if let Some(port_file) = &opts.port_file {
        std::fs::write(port_file, addr.to_string())
            .map_err(|e| CliError::Io(port_file.clone(), e))?;
    }

    let stop = Arc::new(AtomicBool::new(false));
    let ctx = Arc::new(ServeCtx {
        reader: snapshot_reader,
        stop: Arc::clone(&stop),
        queries: AtomicU64::new(0),
        num_shards,
        fsync_label: opts.data_dir.is_some().then(|| opts.fsync.label()),
    });

    // Ingestion runs beside the accept loop; queries observe its
    // progress through snapshots. QUIT aborts between passes.
    let ingest = {
        let stop = Arc::clone(&stop);
        let passes = opts.passes.max(1);
        std::thread::spawn(move || {
            let mut sketch = sketch;
            for _ in 0..passes {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                sketch.ingest_slice_parallel(&stream, threads);
            }
            sketch.drain();
        })
    };

    let mut connections: u64 = 0;
    let mut handlers = Vec::new();
    let mut accept_error: Option<CliError> = None;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((conn, _)) => {
                connections += 1;
                let ctx = Arc::clone(&ctx);
                handlers.push(std::thread::spawn(move || handle_connection(conn, &ctx)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(e) => {
                // A fatal accept failure must still shut the server
                // down gracefully: stop the handlers and the ingest
                // thread before surfacing the error, or they would
                // outlive this call.
                accept_error = Some(CliError::Net(addr.to_string(), e));
                stop.store(true, Ordering::SeqCst);
            }
        }
    }
    for handler in handlers {
        let _ = handler.join();
    }
    ingest.join().expect("ingest thread panicked");
    if let Some(error) = accept_error {
        return Err(error);
    }

    let snapshot = ctx.reader.snapshot();
    let mut report = format!(
        "served {} queries over {} connections on {}\n\
         final snapshot: epoch {}, N = {}, {} counters, max error ±{}\n",
        ctx.queries.load(Ordering::SeqCst),
        connections,
        addr,
        snapshot.epoch(),
        snapshot.stream_weight(),
        snapshot.num_counters(),
        snapshot.maximum_error()
    );
    if let Some(dir) = &opts.data_dir {
        report.push_str(&format!(
            "durable: {} (recovered N = {recovered_weight}, \
             last checkpoint epoch {}, fsync {})\n",
            dir.display(),
            ctx.reader.last_checkpoint_epoch(),
            opts.fsync.label()
        ));
    }
    Ok(report)
}

/// Serves one client connection until EOF, a fatal I/O error, or QUIT
/// (which also stops the whole server).
fn handle_connection(conn: TcpStream, ctx: &ServeCtx) {
    // A finite read timeout lets the handler notice a server-wide stop
    // even when its client sits idle.
    let _ = conn.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = match conn.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut lines = BufReader::new(conn);
    let mut line = String::new();
    loop {
        match lines.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                let (reply, quit) = handle_request(line.trim(), ctx);
                line.clear();
                if writer.write_all(reply.as_bytes()).is_err() || writer.flush().is_err() {
                    return;
                }
                if quit {
                    ctx.stop.store(true, Ordering::SeqCst);
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // A timeout can strike mid-line with a partial request
                // already appended to `line`; keep it and resume reading
                // unless the server is stopping.
                if ctx.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Formats one result row of the text protocol.
fn protocol_row(row: &streamfreq_core::Row<u64>) -> String {
    format!(
        "{} {} {} {}\n",
        row.item, row.estimate, row.lower_bound, row.upper_bound
    )
}

/// Answers one request line. Returns the reply text and whether the
/// server should shut down.
fn handle_request(request: &str, ctx: &ServeCtx) -> (String, bool) {
    let tokens: Vec<&str> = request.split_whitespace().collect();
    let Some(command) = tokens.first() else {
        return ("ERR empty request\n".into(), false);
    };
    match command.to_ascii_uppercase().as_str() {
        "EST" => {
            ctx.queries.fetch_add(1, Ordering::SeqCst);
            let [_, item] = tokens[..] else {
                return ("ERR usage: EST <item>\n".into(), false);
            };
            let Ok(item) = item.parse::<u64>() else {
                return (format!("ERR bad item `{item}`\n"), false);
            };
            let snap = ctx.reader.snapshot();
            (
                format!(
                    "OK {} {} {}\n",
                    snap.estimate(&item),
                    snap.lower_bound(&item),
                    snap.upper_bound(&item)
                ),
                false,
            )
        }
        "TOPK" => {
            ctx.queries.fetch_add(1, Ordering::SeqCst);
            let [_, n] = tokens[..] else {
                return ("ERR usage: TOPK <n>\n".into(), false);
            };
            let Ok(n) = n.parse::<usize>() else {
                return (format!("ERR bad row count `{n}`\n"), false);
            };
            if n == 0 || n > MAX_TOPK {
                return (format!("ERR row count {n} outside 1..={MAX_TOPK}\n"), false);
            }
            let rows = ctx.reader.snapshot().top_k(n);
            let mut reply = format!("OK {}\n", rows.len());
            for row in &rows {
                reply.push_str(&protocol_row(row));
            }
            (reply, false)
        }
        "HH" => {
            ctx.queries.fetch_add(1, Ordering::SeqCst);
            let (phi, contract) = match tokens[..] {
                [_, phi] => (phi, ErrorType::NoFalseNegatives),
                [_, phi, "nfp"] => (phi, ErrorType::NoFalsePositives),
                [_, phi, "nfn"] => (phi, ErrorType::NoFalseNegatives),
                _ => return ("ERR usage: HH <phi> [nfp|nfn]\n".into(), false),
            };
            let Ok(phi) = phi.parse::<f64>() else {
                return (format!("ERR bad phi `{phi}`\n"), false);
            };
            if !(0.0..=1.0).contains(&phi) {
                return (format!("ERR phi {phi} outside [0, 1]\n"), false);
            }
            let rows = ctx.reader.snapshot().heavy_hitters(phi, contract);
            let mut reply = format!("OK {}\n", rows.len());
            for row in &rows {
                reply.push_str(&protocol_row(row));
            }
            (reply, false)
        }
        "STATS" => {
            ctx.queries.fetch_add(1, Ordering::SeqCst);
            let snap = ctx.reader.snapshot();
            let mut reply = format!(
                "OK epoch={} n={} counters={} max_error={} enqueued={} \
                 ingest_done={} shards={}",
                snap.epoch(),
                snap.stream_weight(),
                snap.num_counters(),
                snap.maximum_error(),
                ctx.reader.enqueued_weight(),
                u8::from(ctx.reader.is_sealed()),
                ctx.num_shards
            );
            if let Some(fsync) = &ctx.fsync_label {
                reply.push_str(&format!(
                    " wal_bytes={} last_checkpoint_epoch={} fsync_policy={fsync}",
                    ctx.reader.wal_bytes(),
                    ctx.reader.last_checkpoint_epoch()
                ));
            }
            reply.push('\n');
            (reply, false)
        }
        "CKPT" => {
            ctx.queries.fetch_add(1, Ordering::SeqCst);
            if ctx.fsync_label.is_none() {
                return (
                    "ERR server is not durable (start with --data-dir)\n".into(),
                    false,
                );
            }
            match ctx.reader.request_checkpoint(Duration::from_secs(30)) {
                Some(epoch) => (format!("OK epoch={epoch}\n"), false),
                None => ("ERR checkpoint unavailable (draining?)\n".into(), false),
            }
        }
        "QUIT" => ("OK bye\n".into(), true),
        other => (format!("ERR unknown command `{other}`\n"), false),
    }
}

/// Sends one protocol request to a local `streamfreq serve` instance
/// and returns the full response (header plus any rows).
///
/// # Errors
/// Returns [`CliError::Net`] if the connection or the exchange fails.
pub fn run_query_remote(port: u16, request: &[String]) -> Result<String, CliError> {
    let addr = format!("127.0.0.1:{port}");
    let net = |e: std::io::Error| CliError::Net(addr.clone(), e);
    let mut conn = TcpStream::connect(&addr).map_err(net)?;
    let line = request.join(" ");
    conn.write_all(format!("{line}\n").as_bytes())
        .map_err(net)?;
    let mut reader = BufReader::new(conn.try_clone().map_err(net)?);
    let mut first = String::new();
    reader.read_line(&mut first).map_err(net)?;
    let mut out = first.clone();
    // Multi-row responses announce their row count in the header.
    let is_multi_row = matches!(
        request.first().map(|c| c.to_ascii_uppercase()).as_deref(),
        Some("TOPK" | "HH")
    );
    if is_multi_row {
        if let Some(rows) = first
            .strip_prefix("OK ")
            .and_then(|rest| rest.trim().parse::<usize>().ok())
        {
            for _ in 0..rows {
                let mut row = String::new();
                reader.read_line(&mut row).map_err(net)?;
                out.push_str(&row);
            }
        }
    }
    Ok(out)
}
