//! `streamfreq` — command-line front end for the frequent-items sketch.
//!
//! Mirrors the workflows a production deployment runs around the library
//! (build a sketch from a stream file, inspect it, merge shards, answer
//! queries) so the sketch can be exercised without writing Rust:
//!
//! ```text
//! streamfreq build  -k 4096 --input updates.bin --output day1.sk
//! streamfreq info   day1.sk
//! streamfreq top    day1.sk -n 20
//! streamfreq query  day1.sk 192168001001 424242
//! streamfreq merge  day1.sk day2.sk --output week.sk
//! streamfreq synth  --updates 1000000 --output demo.bin      # demo stream
//! streamfreq serve  -k 4096 --input demo.bin --port 7070     # live queries
//! streamfreq query-remote --port 7070 TOPK 10
//! ```
//!
//! Stream files are the 16-byte little-endian `(item, weight)` records of
//! `streamfreq_workloads::save_binary`; sketch files are the versioned
//! wire format of `streamfreq_core::codec`.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use streamfreq_cli::{parse_args, run, CliError, Command};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(Command::Help) => {
            print!("{}", streamfreq_cli::USAGE);
            return ExitCode::SUCCESS;
        }
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `streamfreq help` for usage");
            return ExitCode::from(2);
        }
    };
    match run(&command) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(CliError::Io(path, e)) => {
            eprintln!("error: {}: {e}", display(&path));
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn display(p: &Path) -> String {
    PathBuf::from(p).display().to_string()
}
