//! Cluster-mode end-to-end tests: real `streamfreq` processes over
//! loopback.
//!
//! The keystone is the **differential invariant** of DESIGN.md's cluster
//! section: a 3-node cluster answering `EST` / `TOPK` / `HH` / `STATS`
//! through the merging query tier must produce *byte-for-byte* the same
//! estimates AND error bounds as a single-node Algorithm-5 bank built
//! from the merged per-node engines — including after one node is
//! SIGKILLed mid-run and its WAL-shipped replica is promoted in its
//! place. Theorem 5 is what makes this equality exact rather than
//! approximate: per-node offsets add, stream weights add.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use streamfreq_cli::serve;
use streamfreq_core::cluster::{NodeSpec, Topology};
use streamfreq_core::{ErrorType, FreqSketch, PurgePolicy, ShardedSketch, SketchEngine};
use streamfreq_workloads::save_binary;

/// Bank shape shared by every node process and the reference bank.
const K: usize = 512;
const SHARDS: usize = 4;
const SEED: u64 = 7;
const VNODES: u32 = 32;
const DEADLINE: Duration = Duration::from_secs(60);

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_streamfreq"))
}

/// Fresh scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sf-cluster-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Kills the child on drop so a panicking test never leaks processes.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Deterministic skewed stream: a handful of heavy items over a long
/// tail of 4096 distinct ids, so `k = 512` forces real purges.
fn synth_stream(len: usize, salt: u64) -> Vec<(u64, u64)> {
    let mut x = 0x243F_6A88_85A3_08D3_u64 ^ salt;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let item = if x.is_multiple_of(4) { x % 8 } else { (x >> 8) % 4096 };
            let weight = (x >> 32) % 100 + 1;
            (item, weight)
        })
        .collect()
}

/// Spawns one durable ingest node (no `--input`: wire-ingest mode) and
/// returns its guard.
fn spawn_node(data_dir: &Path, port_file: &Path) -> ChildGuard {
    let child = bin()
        .args(["serve", "-k", "512", "--threads", "2", "--shards", "4"])
        .args(["--policy", "smed", "--seed", "7", "--snapshot-ms", "5"])
        .args(["--port", "0", "--fsync", "off"])
        .arg("--port-file")
        .arg(port_file)
        .arg("--data-dir")
        .arg(data_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn node");
    ChildGuard(child)
}

/// Waits for a `--port-file` handshake and returns the bound address.
fn wait_addr(port_file: &Path) -> String {
    let deadline = Instant::now() + DEADLINE;
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            let text = text.trim().to_string();
            if text.contains(':') {
                return text;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no port file at {}",
            port_file.display()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn port_of(addr: &str) -> u16 {
    addr.rsplit(':').next().unwrap().parse().unwrap()
}

/// One text-protocol exchange (count-prefixed rows included).
fn text_request(addr: &str, request: &str) -> Vec<String> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(format!("{request}\n").as_bytes()).unwrap();
    let mut reader = BufReader::new(conn);
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    let mut lines = vec![first.trim().to_string()];
    if matches!(request.split_whitespace().next(), Some("TOPK" | "HH")) {
        if let Some(rows) = lines[0]
            .strip_prefix("OK ")
            .and_then(|n| n.parse::<usize>().ok())
        {
            for _ in 0..rows {
                let mut row = String::new();
                reader.read_line(&mut row).unwrap();
                lines.push(row.trim().to_string());
            }
        }
    }
    lines
}

/// One binary-protocol `SNAP` exchange: returns the node's published
/// merged engine, exactly what the query tier fans out for.
fn binary_snap(addr: &str) -> SketchEngine<u64> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(b"SFBP").unwrap();
    conn.write_all(&1u32.to_le_bytes()).unwrap();
    conn.write_all(&[0x07]).unwrap(); // SNAP, empty payload
    let mut reader = BufReader::new(conn);
    let mut len = [0u8; 4];
    std::io::Read::read_exact(&mut reader, &mut len).unwrap();
    let mut frame = vec![0u8; u32::from_le_bytes(len) as usize];
    std::io::Read::read_exact(&mut reader, &mut frame).unwrap();
    assert_eq!(
        frame[0],
        0,
        "SNAP failed: {}",
        String::from_utf8_lossy(&frame[1..])
    );
    streamfreq_core::cluster::wire::decode_snapshot(&frame[1..])
        .expect("snapshot payload")
        .engine
}

/// Parses a `key=value` field out of a `STATS` reply line.
fn stats_field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("missing {key} in `{line}`"))
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in `{line}`"))
}

/// Polls a node's `STATS` until its applied weight reaches `expected`.
fn wait_weight(addr: &str, expected: u64) {
    let deadline = Instant::now() + DEADLINE;
    loop {
        let stats = text_request(addr, "STATS");
        let n = stats_field(&stats[0], "n");
        if n == expected {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "node {addr} stuck at n={n}, want {expected}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Runs the CLI binary to completion and returns its stdout.
fn run_cli(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("run cli");
    assert!(
        out.status.success(),
        "`streamfreq {}` failed:\nstdout: {}\nstderr: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// The reference per-node bank: exactly the shape `serve` builds
/// (`SHARDS` shards of `K / SHARDS` counters, merged at capacity `K`),
/// then round-tripped through the SFQ1 codec the way every `SNAP`
/// payload is. The roundtrip matters: decoding rebuilds the hash table,
/// which is operationally identical but may lay counters out in
/// different slots, and downstream *purge sampling* reads slots by
/// position — so the single-node comparator must consume the same
/// serialized snapshots the query tier does.
fn node_engine(slice: &[(u64, u64)]) -> SketchEngine<u64> {
    let mut bank: ShardedSketch = ShardedSketch::builder(SHARDS, K / SHARDS)
        .policy(PurgePolicy::smed())
        .seed(SEED)
        .build()
        .unwrap();
    bank.update_batch(slice);
    let organic = bank.merged_with_capacity(K);
    SketchEngine::<u64>::deserialize_from_bytes(&organic.serialize_to_bytes())
        .expect("reference snapshot roundtrip")
}

/// The reference cluster answer: per-node engines merged in topology
/// node order into one `K`-counter bank — the same recipe the query
/// tier's `merge_engines` uses.
fn reference_bank(slices: &[Vec<(u64, u64)>]) -> FreqSketch {
    let mut merged = FreqSketch::builder(K)
        .policy(PurgePolicy::smed())
        .seed(SEED)
        .build()
        .unwrap();
    for slice in slices {
        merged.merge(&FreqSketch::from(node_engine(slice)));
    }
    merged
}

/// Renders the expected `OK` block for one query against a reference
/// bank, byte-for-byte in the text protocol's shape.
fn expected_answer(bank: &FreqSketch, query: &str) -> String {
    let row = |r: &streamfreq_core::Row<u64>| {
        format!(
            "{} {} {} {}\n",
            r.item, r.estimate, r.lower_bound, r.upper_bound
        )
    };
    let tokens: Vec<&str> = query.split_whitespace().collect();
    match tokens[0] {
        "EST" => {
            let item: u64 = tokens[1].parse().unwrap();
            format!(
                "OK {} {} {}\n",
                bank.estimate(item),
                bank.lower_bound(item),
                bank.upper_bound(item)
            )
        }
        "TOPK" => {
            let rows = bank.top_k(tokens[1].parse().unwrap());
            let mut out = format!("OK {}\n", rows.len());
            rows.iter().for_each(|r| out.push_str(&row(r)));
            out
        }
        "HH" => {
            let rows = bank.heavy_hitters(tokens[1].parse().unwrap(), ErrorType::NoFalseNegatives);
            let mut out = format!("OK {}\n", rows.len());
            rows.iter().for_each(|r| out.push_str(&row(r)));
            out
        }
        other => panic!("unexpected query {other}"),
    }
}

/// Asserts that a `cluster-query` run over `topo` answers `query`
/// byte-for-byte like the reference bank (the part before the
/// `cluster:` diagnostics block).
fn assert_cluster_answer(topo: &Path, bank: &FreqSketch, query: &str) {
    let topo = topo.to_str().unwrap();
    let mut args = vec!["cluster-query", "--topology", topo, "-k", "512"];
    args.extend(["--policy", "smed", "--seed", "7"]);
    args.extend(query.split_whitespace());
    let out = run_cli(&args);
    let answer = out
        .split("cluster:")
        .next()
        .unwrap_or_else(|| panic!("no diagnostics in `{out}`"));
    assert_eq!(
        answer,
        expected_answer(bank, query),
        "cluster answer for `{query}` diverged from the single-node merged bank"
    );
}

/// The keystone differential: 3 wire-ingest nodes + query tier equal a
/// single-node merged bank, before and after one node is killed and its
/// WAL-shipped replica promoted.
#[test]
fn cluster_matches_single_node_merged_bank_across_crash_and_promotion() {
    let dir = scratch("keystone");
    let stream_a = synth_stream(24_000, 1);
    let stream_b = synth_stream(12_000, 2);
    let input_a = dir.join("a.bin");
    let input_b = dir.join("b.bin");
    save_binary(&stream_a, &input_a).unwrap();
    save_binary(&stream_b, &input_b).unwrap();

    // Three durable wire-ingest nodes, ephemeral ports.
    let mut nodes = Vec::new();
    let mut addrs = Vec::new();
    for id in 1..=3u64 {
        let data_dir = dir.join(format!("node{id}"));
        let port_file = dir.join(format!("p{id}"));
        nodes.push(spawn_node(&data_dir, &port_file));
        addrs.push(wait_addr(&port_file));
    }

    // Topology file: epoch 1, node ids 1..=3 at the bound addresses.
    let specs: Vec<NodeSpec> = addrs
        .iter()
        .zip(1..)
        .map(|(addr, id)| NodeSpec {
            id,
            addr: addr.clone(),
        })
        .collect();
    let topology = Topology::new(1, VNODES, specs).unwrap();
    let topo_path = dir.join("topology.sftopo");
    std::fs::write(&topo_path, topology.encode()).unwrap();

    // The in-test view of routing: pure ring math, same as the client.
    let ring = topology.ring();
    let route = |stream: &[(u64, u64)], slices: &mut [Vec<(u64, u64)>]| {
        for &(item, weight) in stream {
            slices[ring.route(&item)].push((item, weight));
        }
    };
    let mut slices: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 3];
    route(&stream_a, &mut slices);
    let weight_of = |s: &[(u64, u64)]| s.iter().map(|&(_, w)| w).sum::<u64>();
    assert!(
        slices.iter().all(|s| !s.is_empty()),
        "degenerate ring: every node must own part of the keyspace"
    );

    // Phase 1: ship half A through the sharded ingest client.
    let report = run_cli(&[
        "cluster-ingest",
        "--topology",
        topo_path.to_str().unwrap(),
        "--input",
        input_a.to_str().unwrap(),
    ]);
    assert!(
        report.contains(&format!("shipped {} updates", stream_a.len())),
        "{report}"
    );
    for (addr, slice) in addrs.iter().zip(&slices) {
        wait_weight(addr, weight_of(slice));
    }

    // Per-node differential: each node's shipped engine must equal the
    // sequential single-node reference for its slice, bit for bit.
    for (i, (addr, slice)) in addrs.iter().zip(&slices).enumerate() {
        assert_eq!(
            binary_snap(addr).state_fingerprint(),
            node_engine(slice).state_fingerprint(),
            "node {} engine diverged after phase A",
            i + 1
        );
    }

    // Differential check #1: estimates AND bounds match byte-for-byte.
    let bank_a = reference_bank(&slices);
    let hot = stream_a[0].0;
    for query in [
        format!("EST {hot}"),
        "EST 999999999".into(),
        "TOPK 10".into(),
        "HH 0.02".into(),
    ] {
        assert_cluster_answer(&topo_path, &bank_a, &query);
    }
    let stats = run_cli(&[
        "cluster-query",
        "--topology",
        topo_path.to_str().unwrap(),
        "-k",
        "512",
        "--policy",
        "smed",
        "--seed",
        "7",
        "STATS",
    ]);
    assert!(
        stats.starts_with(&format!("OK n={} ", weight_of(&stream_a))),
        "{stats}"
    );
    assert!(stats.contains("nodes=3"), "{stats}");

    // The front node answers the same text protocol from its merged
    // cache; `QUIT` stops the front, never the ingest nodes.
    let front_port_file = dir.join("front-port");
    let front = ChildGuard(
        bin()
            .args([
                "cluster-serve",
                "-k",
                "512",
                "--policy",
                "smed",
                "--seed",
                "7",
            ])
            .args(["--port", "0", "--refresh-ms", "50"])
            .arg("--topology")
            .arg(&topo_path)
            .arg("--port-file")
            .arg(&front_port_file)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap(),
    );
    let front_addr = wait_addr(&front_port_file);
    let est = text_request(&front_addr, &format!("EST {hot}"));
    assert_eq!(
        format!("{}\n", est[0]),
        expected_answer(&bank_a, &format!("EST {hot}")),
        "front node answer diverged"
    );
    assert_eq!(text_request(&front_addr, "QUIT")[0], "OK bye");
    drop(front);

    // Phase 2: replicate node 3, SIGKILL it, promote the replica.
    let replica_dir = dir.join("replica3");
    let report = run_cli(&[
        "cluster-replicate",
        "--port",
        &port_of(&addrs[2]).to_string(),
        "--dir",
        replica_dir.to_str().unwrap(),
    ]);
    assert!(report.contains("leader checkpointed"), "{report}");
    assert!(report.contains("manifest:"), "{report}");
    nodes[2].0.kill().unwrap();
    nodes[2].0.wait().unwrap();

    // The replacement recovers checkpoint ⊕ shipped WAL tail and must
    // land exactly on node 3's pre-crash applied weight.
    let new_port_file = dir.join("p3-promoted");
    nodes[2] = spawn_node(&replica_dir, &new_port_file);
    let new_addr = wait_addr(&new_port_file);
    wait_weight(&new_addr, weight_of(&slices[2]));
    let report = run_cli(&[
        "cluster-promote",
        "--topology",
        topo_path.to_str().unwrap(),
        "--node",
        "3",
        "--addr",
        &new_addr,
    ]);
    assert!(report.contains("epoch"), "{report}");
    let promoted = Topology::parse(&std::fs::read(&topo_path).unwrap()).unwrap();
    assert_eq!(promoted.epoch(), 2, "promotion must bump the epoch");
    assert_eq!(promoted.nodes()[2].addr, new_addr);

    // Phase 3: ship half B to the reshaped cluster. Node ids (and so
    // ring placement) are unchanged, only node 3's address moved.
    run_cli(&[
        "cluster-ingest",
        "--topology",
        topo_path.to_str().unwrap(),
        "--input",
        input_b.to_str().unwrap(),
    ]);
    route(&stream_b, &mut slices);
    let final_addrs = [addrs[0].clone(), addrs[1].clone(), new_addr];
    for (addr, slice) in final_addrs.iter().zip(&slices) {
        wait_weight(addr, weight_of(slice));
    }

    // Per-node differential: each node's published engine must equal
    // the sequential reference bank for its slice, bit for bit.
    for (i, (addr, slice)) in final_addrs.iter().zip(&slices).enumerate() {
        assert_eq!(
            binary_snap(addr).state_fingerprint(),
            node_engine(slice).state_fingerprint(),
            "node {} engine diverged from its sequential reference",
            i + 1
        );
    }

    // Differential check #2: the invariant survives crash + promotion.
    let bank_ab = reference_bank(&slices);
    for query in [
        format!("EST {hot}"),
        format!("EST {}", stream_b[0].0),
        "TOPK 25".into(),
        "HH 0.01".into(),
    ] {
        assert_cluster_answer(&topo_path, &bank_ab, &query);
    }

    for addr in &final_addrs {
        assert_eq!(text_request(addr, "QUIT")[0], "OK bye");
    }
}

/// Satellite regression: `query-remote` used to block forever against a
/// server that accepts the connection but never replies (and against a
/// dead port with no bound listener). With timeouts + bounded retries
/// both protocols must fail fast instead.
#[test]
fn query_remote_errors_fast_on_silent_or_dead_servers() {
    // A "server" that accepts and then stays silent, holding every
    // connection open so the client never sees EOF.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = listener.local_addr().unwrap().port();
    std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((sock, _)) = listener.accept() {
            held.push(sock);
        }
    });
    for binary in [false, true] {
        let started = Instant::now();
        let result = serve::run_query_remote(port, &["STATS".to_string()], binary, 250, 0);
        assert!(
            result.is_err(),
            "silent server must time out (binary={binary}), got {result:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "timed out too slowly (binary={binary})"
        );
    }

    // A dead port: bind then drop, so nothing is listening. Bounded
    // retries must give up quickly instead of spinning forever.
    let dead = TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_port = dead.local_addr().unwrap().port();
    drop(dead);
    let started = Instant::now();
    let result = serve::run_query_remote(dead_port, &["STATS".to_string()], false, 200, 2);
    assert!(result.is_err(), "dead port must fail, got {result:?}");
    assert!(started.elapsed() < Duration::from_secs(30));
}
