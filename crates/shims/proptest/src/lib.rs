//! Offline stand-in for the published `proptest` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate implements a working property-testing engine covering exactly
//! the API surface the workspace uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map` and `boxed`,
//! * integer/float range strategies, tuples, [`Just`], [`any`],
//!   [`collection::vec`], the `".*"` string pattern, and the weighted and
//!   unweighted [`prop_oneof!`] forms,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed (reproducible CI), there is **no shrinking** (a
//! failure reports the panic message of the failing case directly), and
//! string strategies support only the `".*"` pattern. Swap the manifest
//! entry for crates.io `proptest` to regain shrinking.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving every strategy (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f` (the real crate's
    /// `Strategy::prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.new_value(rng)))
    }
}

/// Type-erased strategy (closure capturing the source strategy).
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Include the endpoint occasionally so `..=1.0` can hit 1.0.
        if rng.below(64) == 0 {
            hi
        } else {
            lo + rng.unit_f64() * (hi - lo)
        }
    }
}

/// String pattern strategy. Only the universal pattern `".*"` is
/// supported by this stand-in: it yields arbitrary (possibly multi-byte)
/// strings of length 0–63 chars.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        assert_eq!(
            *self, ".*",
            "the offline proptest stand-in supports only the \".*\" string pattern"
        );
        let len = rng.below(64) as usize;
        (0..len)
            .map(|_| {
                // Mix ASCII with the occasional multi-byte scalar.
                match rng.below(8) {
                    0 => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('§'),
                    1 => '\u{1F600}',
                    _ => (b' ' + rng.below(95) as u8) as char,
                }
            })
            .collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Full-range strategy for primitive types ([`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns a strategy generating any value of `T` (the real crate's
/// `any::<T>()`).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Weighted union of boxed strategies (backs [`prop_oneof!`]).
pub struct Union<V> {
    choices: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` choices.
    ///
    /// # Panics
    /// Panics if `choices` is empty or all weights are zero.
    pub fn new(choices: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = choices.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { choices, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let mut roll = rng.below(self.total);
        for (w, strat) in &self.choices {
            if roll < *w as u64 {
                return strat.new_value(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("weighted roll exceeded total")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<E::Value>` with length drawn from `size`.
    pub struct VecStrategy<E> {
        element: E,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size` (the real crate's `collection::vec`).
    pub fn vec<E: Strategy>(element: E, size: Range<usize>) -> VecStrategy<E> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Asserts a condition inside a property, with optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property, with optional format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property, with optional format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Builds a strategy choosing among alternatives, optionally weighted:
/// `prop_oneof![a, b, c]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Binds `name in strategy` parameters for one generated case.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bind {
    ($rng:ident;) => {};
    ($rng:ident; mut $name:ident in $strat:expr) => {
        let mut $name = $crate::Strategy::new_value(&$strat, &mut $rng);
    };
    ($rng:ident; mut $name:ident in $strat:expr, $($rest:tt)*) => {
        let mut $name = $crate::Strategy::new_value(&$strat, &mut $rng);
        $crate::__prop_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::new_value(&$strat, &mut $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::new_value(&$strat, &mut $rng);
        $crate::__prop_bind!($rng; $($rest)*);
    };
}

/// Expands the test functions inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            // Derive a per-test seed from the test name so distinct
            // properties explore distinct sequences, deterministically.
            let __name_seed: u64 = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                });
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::new(
                    __name_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(__case as u64 + 1)),
                );
                $crate::__prop_bind!(__rng; $($params)*);
                $body
            }
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

/// Declares property-based tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, mut v in collection::vec(any::<i64>(), 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(<$crate::ProptestConfig as Default>::default(); $($rest)*);
    };
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Add(u64, i64),
        Sweep(i64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..50, y in 1i64..=9, f in 0.25f64..=0.75) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((1..=9).contains(&y));
            prop_assert!((0.25..=0.75).contains(&f), "f = {f}");
        }

        #[test]
        fn vec_and_tuple_compose(
            mut v in collection::vec((0u64..10, 1i64..5), 1..40),
            n in any::<usize>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            let _ = n;
            v.push((0, 1));
            for &(a, b) in &v {
                prop_assert!(a < 10 && (1..5).contains(&b));
            }
        }

        #[test]
        fn oneof_weighted_and_mapped(op in prop_oneof![
            3 => (0u64..100, 1i64..50).prop_map(|(k, d)| Op::Add(k, d)),
            1 => (1i64..20).prop_map(Op::Sweep),
        ]) {
            match op {
                Op::Add(k, d) => prop_assert!(k < 100 && (1..50).contains(&d)),
                Op::Sweep(d) => prop_assert!((1..20).contains(&d)),
            }
        }

        #[test]
        fn string_pattern(s in ".*") {
            prop_assert!(s.chars().count() < 64);
        }
    }

    #[test]
    fn union_covers_all_choices() {
        let u = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::new(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = collection::vec(0u64..1000, 1..20);
        let a: Vec<Vec<u64>> = (0..5)
            .map(|i| strat.new_value(&mut crate::TestRng::new(i)))
            .collect();
        let b: Vec<Vec<u64>> = (0..5)
            .map(|i| strat.new_value(&mut crate::TestRng::new(i)))
            .collect();
        assert_eq!(a, b);
    }
}
