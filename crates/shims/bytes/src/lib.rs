//! Offline stand-in for the published `bytes` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the exact [`Buf`]/[`BufMut`] subset the codec uses:
//! little-endian integer reads over `&[u8]` and writes into `Vec<u8>`.
//! The method names, semantics, and panics match the real crate, so the
//! manifest entry can be swapped for crates.io `bytes` without touching
//! call sites.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Read access to a cursor-like buffer of bytes.
///
/// Matches the subset of `bytes::Buf` the workspace consumes. All `get_*`
/// methods advance the cursor and panic if fewer bytes remain than the
/// value needs, exactly like the real crate.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "buffer underflow: {} bytes needed, {} remaining",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Append access to a growable byte buffer.
///
/// Matches the subset of `bytes::BufMut` the workspace consumes; all
/// `put_*` methods append at the end.
pub trait BufMut {
    /// Appends all of `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(0xAB);
        out.put_u16_le(0x1234);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0102_0304_0506_0708);
        out.put_slice(b"xyz");

        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16_le(), 0x1234);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0102_0304_0506_0708);
        let mut tail = [0u8; 3];
        buf.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1, 2];
        buf.get_u32_le();
    }
}
