//! Offline stand-in for the published `rand` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the subset of the `rand` 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] (half-open and inclusive integer ranges, `f64`),
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`]. Signatures match
//! the real crate closely enough that the manifest entry can be swapped
//! for crates.io `rand` without touching call sites.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — deterministic, high-quality, and fast; it is *not* the
//! ChaCha12 core of the real `StdRng`, so seeded sequences differ from
//! upstream (every consumer in this workspace only relies on determinism
//! given a seed, not on specific values).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

// Mirrors the real crate: references to generators are generators, which
// lets `rng.gen()` resolve on `&mut R` receivers where `R: Rng + ?Sized`.
impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by [`Rng::gen`] (the real crate's `Standard`
/// distribution, collapsed into the value type).
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p {p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction (the real crate's trait, reduced to the one
/// constructor the workspace calls).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// with SplitMix64 seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn split_mix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                split_mix64(&mut sm),
                split_mix64(&mut sm),
                split_mix64(&mut sm),
                split_mix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices (the real crate's trait, reduced to
    /// [`SliceRandom::shuffle`]).
    pub trait SliceRandom {
        /// Fisher-Yates shuffles the slice in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let a: u64 = rng.gen_range(5..2_000);
            assert!((5..2_000).contains(&a));
            let b: i64 = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&b));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
