//! Offline stand-in for the published `criterion` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate implements a small but genuine measurement harness covering the
//! API the workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Throughput`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up for ~0.5 s, then run for
//! `sample_size` samples (default 10); each sample times enough iterations
//! to last ≥ ~50 ms. The harness reports the minimum, median, and mean
//! per-iteration time plus elements/second when a [`Throughput`] is set —
//! tab-separated on stdout, one row per benchmark. There are no plots,
//! no statistical regression, and no saved baselines; swap the manifest
//! entry for crates.io `criterion` to regain those.
//!
//! `cargo test` runs benches with `--test`: the harness detects that flag
//! (or `--list`) and runs each benchmark exactly once, unmeasured, so test
//! runs stay fast while still exercising every bench body.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque optimization barrier (identical implementation to criterion's
/// safe fallback: a volatile-ish read through `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration declaration used to derive throughput rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Two-part benchmark identifier (`function_name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

/// Conversion for the `bench_function` id argument (accepts `&str` or
/// [`BenchmarkId`], like the real crate).
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // `cargo bench` passes --bench to the target; `cargo test` runs the
        // same binary with no flags. Measure only under cargo bench (or an
        // explicit --measure), and never under --test/--list.
        let measure = args.iter().any(|a| a == "--bench" || a == "--measure");
        let test_mode = !measure || args.iter().any(|a| a == "--test" || a == "--list");
        // First free argument (not a flag, not the binary path) filters
        // benchmark names by substring, mirroring criterion's CLI.
        let filter = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with("--") && *a != "--bench")
            .cloned();
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            group_name: name.to_string(),
            throughput: None,
            sample_size: 10,
            header_printed: false,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a Criterion,
    group_name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    header_printed: bool,
}

impl BenchmarkGroup<'_> {
    /// Declares the work one iteration performs (enables rate reporting).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples to take (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let name = id.into_name();
        self.run_one(&name, |b| f(b));
        self
    }

    /// Runs a benchmark against a borrowed input value.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let name = id.into_name();
        self.run_one(&name, |b| f(b, input));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let full = format!("{}/{name}", self.group_name);
        if let Some(filter) = &self.parent.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.parent.test_mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.parent.test_mode {
            println!("{full}: ok (test mode, 1 iteration)");
            return;
        }
        if bencher.samples.is_empty() {
            println!("{full}: no measurement (b.iter never called)");
            return;
        }
        if !self.header_printed {
            println!("group\tbenchmark\tmin_ns\tmedian_ns\tmean_ns\trate");
            self.header_printed = true;
        }
        bencher
            .samples
            .sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        let min = bencher.samples[0];
        let median = bencher.samples[bencher.samples.len() / 2];
        let mean: f64 = bencher.samples.iter().sum::<f64>() / bencher.samples.len() as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!("{:.3e} elem/s", n as f64 / (median * 1e-9)),
            Some(Throughput::Bytes(n)) => format!("{:.3e} B/s", n as f64 / (median * 1e-9)),
            None => "-".to_string(),
        };
        println!(
            "{}\t{name}\t{min:.1}\t{median:.1}\t{mean:.1}\t{rate}",
            self.group_name
        );
    }

    /// Ends the group (kept for API parity; reporting is incremental).
    pub fn finish(&mut self) {}
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Per-iteration nanoseconds, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, storing per-iteration timings on the bencher.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up: run for ~0.5 s to populate caches and settle clocks,
        // learning the iteration cost as we go.
        let warmup = Duration::from_millis(500);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(f());
            iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / iters as f64;
        // Each sample runs enough iterations to last ≥ 50 ms.
        let iters_per_sample = ((0.05 / per_iter).ceil() as u64).max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples.push(ns);
        }
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(
            BenchmarkId::new("quickselect", 1024).into_name(),
            "quickselect/1024"
        );
        assert_eq!("plain".into_name(), "plain");
    }

    #[test]
    fn bencher_measures_in_test_binary() {
        // Not in test_mode here (no --test flag in the test binary args is
        // not guaranteed, so force both paths explicitly).
        let mut b = Bencher {
            test_mode: true,
            sample_size: 3,
            samples: Vec::new(),
        };
        b.iter(|| 1 + 1);
        assert!(b.samples.is_empty(), "test mode must not measure");
    }

    #[test]
    fn black_box_passes_value_through() {
        assert_eq!(black_box(42), 42);
    }
}
