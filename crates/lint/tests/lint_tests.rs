//! Fixture corpus + tree-cleanliness tests for streamfreq-lint.
//!
//! Each fixture under `tests/fixtures/` reintroduces one historical bug
//! class; the lint must flag every one of them when the source is
//! presented under the path scope the rule guards. The final test runs
//! the full tree scan and asserts the workspace itself is clean — the
//! CI gate in executable form.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use streamfreq_lint::{lint_file, lint_tree, reconcile_ledger, rules, Report};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Workspace root: two levels above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn float_threshold_fixture_is_flagged_everywhere() {
    let src = fixture("float_threshold.rs");
    // The float-threshold rule is not path-scoped: the PR-4 bug lived in
    // library code, and test assertions built on the same expression are
    // just as wrong.
    for path in [
        "crates/core/src/bounds.rs",
        "crates/apps/src/decay.rs",
        "tests/accuracy.rs",
    ] {
        let findings = lint_file(path, &src);
        assert!(
            findings.iter().any(|f| f.rule == "float-threshold-cast"),
            "{path}: expected float-threshold-cast, got {findings:?}"
        );
    }
}

#[test]
fn unledgered_unsafe_fixture_fails_reconciliation() {
    let src = fixture("unledgered_unsafe.rs");
    let analysis = rules::analyze("crates/core/src/hashing.rs", &src);
    assert!(
        analysis.unsafe_counts.unsafe_tokens >= 2,
        "the scanner must count both unsafe tokens, got {:?}",
        analysis.unsafe_counts
    );
    assert_eq!(analysis.unsafe_counts.allow_attrs, 1);

    let counts = vec![(
        "crates/core/src/hashing.rs".to_string(),
        analysis.unsafe_counts,
    )];
    // Against an empty ledger: flagged as unledgered.
    let mut report = Report::default();
    reconcile_ledger("", &counts, &mut report);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "unledgered-unsafe"),
        "expected unledgered-unsafe, got {:?}",
        report.findings
    );

    // Against a ledger with drifted counts: still flagged.
    let stale = "\
## crates/core/src/hashing.rs
- unsafe-tokens: 1
- allow-attrs: 1
- justification: pretend.
- cross-check: pretend.
";
    let mut report = Report::default();
    reconcile_ledger(stale, &counts, &mut report);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "unledgered-unsafe" && f.message.contains("drifted")),
        "expected census drift, got {:?}",
        report.findings
    );
}

#[test]
fn decode_panic_fixture_is_flagged_in_decode_scopes() {
    let src = fixture("decode_panic.rs");
    for path in [
        "crates/core/src/codec.rs",
        "crates/core/src/item_codec.rs",
        "crates/core/src/persist/wal.rs",
    ] {
        let findings = lint_file(path, &src);
        assert!(
            findings.iter().any(|f| f.rule == "decode-panic"),
            "{path}: expected decode-panic, got {findings:?}"
        );
    }
    // Outside the decode scope the same source is legal (assertions in
    // engine internals guard programmer errors, not untrusted bytes).
    assert!(
        lint_file("crates/core/src/table.rs", &src).is_empty(),
        "decode-panic must not fire outside the codec/persist scope"
    );
}

#[test]
fn decode_arith_fixture_is_flagged_per_category() {
    let src = fixture("decode_arith.rs");
    let findings = lint_file("crates/core/src/persist/checkpoint.rs", &src);
    for rule in ["decode-index", "decode-arith", "decode-cast"] {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "expected {rule}, got {findings:?}"
        );
    }
}

#[test]
fn every_fixture_is_caught_by_at_least_one_rule() {
    // Belt and braces: no fixture may rot into a silently-clean file.
    for name in ["float_threshold.rs", "decode_panic.rs", "decode_arith.rs"] {
        let src = fixture(name);
        assert!(
            !lint_file("crates/core/src/persist/wal.rs", &src).is_empty(),
            "{name} produced no findings under the decode scope"
        );
    }
    let unsafe_fixture = rules::analyze(
        "crates/core/src/hashing.rs",
        &fixture("unledgered_unsafe.rs"),
    );
    assert!(unsafe_fixture.unsafe_counts.any());
}

#[test]
fn workspace_tree_is_clean() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").exists(),
        "expected the workspace root at {}",
        root.display()
    );
    let report = lint_tree(&root).expect("tree scan");
    assert!(report.files > 50, "suspiciously few files scanned");
    assert!(
        report.clean(),
        "the workspace must lint clean; findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
