//! Fixture: panicking operations on untrusted bytes inside a decode
//! function. Under a codec/persist path, streamfreq-lint must demand
//! Err(Error::Corrupt) instead.

pub fn decode_frame(buf: &[u8]) -> u32 {
    let first = buf.first().copied().unwrap();
    assert!(buf.len() > 4);
    u32::from(first)
}
