//! Fixture: unsafe code with no UNSAFE_LEDGER.md section. The tree-level
//! reconciliation must flag the file as unledgered.

#[allow(unsafe_code)]
pub unsafe fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
