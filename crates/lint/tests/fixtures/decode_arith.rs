//! Fixture: unchecked arithmetic, indexing, and narrowing casts over
//! length-like values in a byte-level decode path — each a historical
//! corruption-to-panic (or overflow) vector.

pub fn decode_header(buf: &[u8]) -> usize {
    let len = buf[0] as usize;
    let total = len + 8;
    total * 2
}
