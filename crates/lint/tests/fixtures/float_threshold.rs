//! Fixture: the PR-4 bug class. A φ-threshold computed through f64 and
//! truncated back to an integer silently disagrees with the exact
//! integer ceiling for large n. streamfreq-lint must flag the cast.

pub fn heavy_hitter_threshold(phi: f64, n: u64) -> u64 {
    let threshold = (phi * n as f64) as u64;
    threshold
}
