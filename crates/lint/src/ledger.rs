//! Parser for `UNSAFE_LEDGER.md` — the checked-in registry every
//! `unsafe` site must appear in.
//!
//! The ledger is ordinary Markdown with a machine-readable skeleton: one
//! `## <path>` section per file containing unsafe code, with four
//! required fields. Example:
//!
//! ```markdown
//! ## crates/core/src/table.rs
//! - unsafe-tokens: 3
//! - allow-attrs: 3
//! - justification: AVX2 wide scan behind a runtime feature check.
//! - cross-check: portable-scan CI job pins STREAMFREQ_FORCE_PORTABLE_SCAN=1.
//! ```
//!
//! `unsafe-tokens` counts occurrences of the `unsafe` keyword in the
//! file (blocks, `unsafe fn`, `unsafe impl`); `allow-attrs` counts
//! `#[allow(unsafe_code)]` attributes. Both must match the scanner's
//! counts exactly, so adding, removing, or moving unsafe code forces a
//! ledger edit (and therefore a reviewed justification) to keep CI green.

use std::collections::BTreeMap;

/// One `## <path>` section of the ledger.
#[derive(Debug, Default, Clone)]
pub struct LedgerEntry {
    /// Line of the `##` heading, for error reporting.
    pub line: u32,
    /// Declared number of `unsafe` keyword tokens in the file.
    pub unsafe_tokens: Option<u64>,
    /// Declared number of `#[allow(unsafe_code)]` attributes.
    pub allow_attrs: Option<u64>,
    /// Why the unsafe code exists.
    pub justification: String,
    /// Pointer to the portable cross-check (test/CI job) that pins it.
    pub cross_check: String,
}

/// The parsed ledger: workspace-relative path → entry.
#[derive(Debug, Default)]
pub struct Ledger {
    pub entries: BTreeMap<String, LedgerEntry>,
    /// Structural problems found while parsing (duplicate sections,
    /// unparsable counts). Reported as findings against the ledger file.
    pub problems: Vec<(u32, String)>,
}

/// Parses ledger markdown. Never fails: malformed input surfaces as
/// `problems`, which the caller turns into lint findings.
pub fn parse(src: &str) -> Ledger {
    let mut ledger = Ledger::default();
    let mut current: Option<String> = None;
    for (idx, raw) in src.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim();
        if let Some(heading) = line.strip_prefix("## ") {
            let path = heading.trim().trim_matches('`').to_string();
            if ledger.entries.contains_key(&path) {
                ledger
                    .problems
                    .push((line_no, format!("duplicate ledger section for {path}")));
                current = None;
                continue;
            }
            ledger.entries.insert(
                path.clone(),
                LedgerEntry {
                    line: line_no,
                    ..LedgerEntry::default()
                },
            );
            current = Some(path);
            continue;
        }
        let Some(path) = &current else { continue };
        let Some(field) = line.strip_prefix("- ") else {
            continue;
        };
        let Some((key, value)) = field.split_once(':') else {
            continue;
        };
        let value = value.trim();
        let entry = ledger
            .entries
            .get_mut(path)
            .expect("current always points at an inserted entry");
        match key.trim() {
            "unsafe-tokens" => match value.parse::<u64>() {
                Ok(n) => entry.unsafe_tokens = Some(n),
                Err(_) => ledger
                    .problems
                    .push((line_no, format!("unparsable unsafe-tokens count `{value}`"))),
            },
            "allow-attrs" => match value.parse::<u64>() {
                Ok(n) => entry.allow_attrs = Some(n),
                Err(_) => ledger
                    .problems
                    .push((line_no, format!("unparsable allow-attrs count `{value}`"))),
            },
            "justification" => entry.justification = value.to_string(),
            "cross-check" => entry.cross_check = value.to_string(),
            _ => {}
        }
    }
    ledger
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_fields() {
        let src = "\
# Unsafe ledger

## crates/core/src/table.rs
Some prose.
- unsafe-tokens: 3
- allow-attrs: 3
- justification: SIMD scan.
- cross-check: portable-scan CI job.

## crates/core/src/persist/mod.rs
- unsafe-tokens: 2
- allow-attrs: 2
- justification: CRC32C intrinsics.
- cross-check: RFC 3720 vectors vs software path.
";
        let ledger = parse(src);
        assert!(ledger.problems.is_empty());
        assert_eq!(ledger.entries.len(), 2);
        let t = &ledger.entries["crates/core/src/table.rs"];
        assert_eq!(t.unsafe_tokens, Some(3));
        assert_eq!(t.allow_attrs, Some(3));
        assert_eq!(t.justification, "SIMD scan.");
        assert!(t.cross_check.contains("portable-scan"));
    }

    #[test]
    fn duplicates_and_bad_counts_are_problems() {
        let src = "\
## a.rs
- unsafe-tokens: lots
## a.rs
- unsafe-tokens: 1
";
        let ledger = parse(src);
        assert_eq!(ledger.problems.len(), 2);
    }
}
