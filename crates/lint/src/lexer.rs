//! A small hand-rolled Rust lexer — just enough token structure for the
//! repo lints, with zero dependencies.
//!
//! The lexer's one job is to make the scanners immune to the classic
//! grep failure modes: `unsafe` inside a doc comment, `unwrap()` inside
//! a string literal, `'a` lifetimes versus `'a'` char literals, nested
//! block comments. It produces a flat token stream (identifiers,
//! numeric/string literals, single-char punctuation) plus the line
//! comments (for `lint:allow` waivers). It does **not** build a syntax
//! tree; the rules layer works on token patterns.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unsafe`, `phi`, ...).
    Ident(String),
    /// Numeric literal, raw text preserved (to classify floats).
    Num(String),
    /// String, byte-string, raw-string, or char literal. Content dropped:
    /// literals can never trigger a code lint.
    Str,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Any other single character (`{`, `+`, `#`, ...).
    Punct(char),
}

/// A token plus the 1-indexed source line it starts on.
#[derive(Debug, Clone)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: u32,
}

/// Lexer output: the token stream and every line/block comment with its
/// starting line (block comments are recorded once, at their first line).
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<SpannedTok>,
    pub comments: Vec<(u32, String)>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`. Unterminated literals/comments end the token stream at
/// the malformation (the compiler rejects such files anyway; the lint
/// must merely not loop or panic).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($tok:expr) => {
            out.toks.push(SpannedTok { tok: $tok, line })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                out.comments.push((line, chars[start..i].iter().collect()));
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push((
                    start_line,
                    chars[start..i.min(chars.len())].iter().collect(),
                ));
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
                push!(Tok::Str);
            }
            'r' | 'b' if starts_raw_or_byte_literal(&chars, i) => {
                let (next, is_str) = skip_prefixed_literal(&chars, i, &mut line);
                i = next;
                if is_str {
                    push!(Tok::Str);
                } else {
                    // `r#ident` raw identifier: the ident was consumed.
                    // Re-lex it as a plain identifier token.
                    let text: String = chars[..i]
                        .iter()
                        .rev()
                        .take_while(|c| is_ident_continue(**c))
                        .collect::<Vec<_>>()
                        .into_iter()
                        .rev()
                        .collect();
                    push!(Tok::Ident(text));
                }
            }
            '\'' => {
                // Char literal or lifetime.
                if chars.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: skip to the closing quote.
                    i += 2;
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    push!(Tok::Str);
                } else if chars.get(i + 2) == Some(&'\'') {
                    i += 3;
                    push!(Tok::Str);
                } else {
                    i += 1;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                    push!(Tok::Lifetime);
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                push!(Tok::Ident(chars[start..i].iter().collect()));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                let hex = c == '0'
                    && matches!(chars.get(i), Some('x') | Some('X') | Some('o') | Some('b'));
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_ascii_alphanumeric() || d == '_' {
                        // Exponent sign: `1e-5` / `1E+5` (decimal only).
                        if !hex
                            && (d == 'e' || d == 'E')
                            && matches!(chars.get(i + 1), Some('+') | Some('-'))
                            && chars.get(i + 2).is_some_and(|c| c.is_ascii_digit())
                        {
                            i += 2;
                        }
                        i += 1;
                    } else if d == '.'
                        && !hex
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                    {
                        // Fraction digits — but `0..4` is a range and
                        // `1.max(2)` is a method call, both excluded by
                        // requiring a digit after the dot.
                        i += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Num(chars[start..i].iter().collect()));
            }
            other => {
                push!(Tok::Punct(other));
                i += 1;
            }
        }
    }
    out
}

/// Is `chars[i..]` an `r"`/`r#`-style raw literal or `b"`/`b'` byte
/// literal (as opposed to a plain identifier starting with r/b)?
fn starts_raw_or_byte_literal(chars: &[char], i: usize) -> bool {
    match chars[i] {
        'r' => matches!(chars.get(i + 1), Some('"') | Some('#')),
        'b' => matches!(chars.get(i + 1), Some('"') | Some('\'') | Some('r')),
        _ => false,
    }
}

/// Skips a plain `"..."` string starting at the opening quote; returns
/// the index one past the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`, or a raw
/// identifier `r#ident`. Returns `(next_index, was_literal)`; for a raw
/// identifier the ident chars are consumed and `was_literal` is false.
fn skip_prefixed_literal(chars: &[char], mut i: usize, line: &mut u32) -> (usize, bool) {
    // Consume the prefix letters (r, b, br, rb).
    let mut j = i;
    while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') {
        j += 1;
    }
    // Count raw hashes.
    let mut hashes = 0usize;
    while chars.get(j + hashes) == Some(&'#') {
        hashes += 1;
    }
    match chars.get(j + hashes) {
        Some('"') => {
            // Raw (or plain byte) string: scan for `"` followed by
            // `hashes` hashes. Escapes are inert in raw strings; plain
            // b"..." escapes still never produce a bare quote before a
            // backslash-quote, which this scan treats conservatively.
            let raw = hashes > 0 || chars.get(j) == Some(&'"') && chars[i] == 'r';
            let mut k = j + hashes + 1;
            while k < chars.len() {
                if chars[k] == '\n' {
                    *line += 1;
                    k += 1;
                    continue;
                }
                if !raw && chars[k] == '\\' {
                    k += 2;
                    continue;
                }
                if chars[k] == '"' {
                    let mut h = 0usize;
                    while h < hashes && chars.get(k + 1 + h) == Some(&'#') {
                        h += 1;
                    }
                    if h == hashes {
                        return (k + 1 + hashes, true);
                    }
                }
                k += 1;
            }
            (k, true)
        }
        Some('\'') if hashes == 0 => {
            // Byte char literal b'x' / b'\n'.
            let mut k = j + 1;
            if chars.get(k) == Some(&'\\') {
                k += 2;
            }
            while k < chars.len() && chars[k] != '\'' {
                k += 1;
            }
            (k + 1, true)
        }
        _ if hashes > 0 => {
            // Raw identifier r#ident.
            i = j + hashes;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            (i, false)
        }
        _ => {
            // Plain identifier starting with r/b after all (e.g. `rb` was
            // not followed by a literal): consume as identifier.
            i = j;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            (i, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // unsafe in a line comment
            /* unwrap() in /* a nested */ block comment */
            let s = "unsafe unwrap()";
            let r = r#"expect("oops")"#;
            let b = b"panic!";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed.toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let strs = lexed.toks.iter().filter(|t| t.tok == Tok::Str).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(strs, 1);
    }

    #[test]
    fn numbers_classify_and_ranges_split() {
        let lexed = lex("a[0..4]; 1.5e-3; 2.0; 0xFF; 1f64");
        let nums: Vec<String> = lexed
            .toks
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Num(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0", "4", "1.5e-3", "2.0", "0xFF", "1f64"]);
    }

    #[test]
    fn line_numbers_track() {
        let lexed = lex("one\n\ntwo // note\nthree");
        let lines: Vec<(String, u32)> = lexed
            .toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some((s.clone(), t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(
            lines,
            vec![("one".into(), 1), ("two".into(), 3), ("three".into(), 4)]
        );
        assert_eq!(lexed.comments, vec![(3, "// note".to_string())]);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let ids = idents("let r#type = 1; br#\"raw bytes\"#;");
        assert!(ids.contains(&"type".to_string()));
    }
}
