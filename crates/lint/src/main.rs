//! `streamfreq-lint` — walk the workspace, enforce the unsafe ledger
//! and the arithmetic-safety/decode-panic lints.
//!
//! Usage: `streamfreq-lint [--root DIR]` (default: current directory).
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: streamfreq-lint [--root DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "error: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }

    let report = match streamfreq_lint::lint_tree(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    let status = if report.clean() { "clean" } else { "FAILED" };
    println!(
        "streamfreq-lint: {} file(s) scanned, {} finding(s), {} waived — {status}",
        report.files,
        report.findings.len(),
        report.suppressed
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
