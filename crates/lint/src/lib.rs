//! streamfreq-lint: in-repo static analysis for the streamfreq
//! workspace.
//!
//! Three enforcement layers, each born from a real bug class in this
//! repo's history (see `DESIGN.md` § Correctness tooling):
//!
//! 1. **Unsafe ledger** — every `unsafe` token and
//!    `#[allow(unsafe_code)]` attribute must be accounted for, with
//!    exact counts, in the checked-in `UNSAFE_LEDGER.md`, alongside a
//!    justification and a pointer to the portable cross-check that pins
//!    its behaviour. New unsafe code fails CI until ledgered.
//! 2. **Arithmetic safety** — float→int truncating casts near
//!    φ/threshold identifiers; unchecked narrowing `as` casts and bare
//!    `+`/`*` over length-like values in the byte-level decode files.
//! 3. **Panic freedom on untrusted input** — `unwrap`/`expect`/`panic!`
//!    family reachable from decode paths in the codecs and `persist/`.
//!
//! The binary (`cargo run -p streamfreq-lint`) walks the tree from the
//! workspace root and exits nonzero on any finding. The library exposes
//! [`lint_file`] so the fixture tests can feed synthetic paths.

pub mod ledger;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{analyze, Finding, UnsafeCounts};

/// One finding located in the tree.
#[derive(Debug, Clone)]
pub struct TreeFinding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

/// The result of linting a whole tree.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<TreeFinding>,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Findings silenced by valid `lint:allow` waivers.
    pub suppressed: usize,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Name of the unsafe ledger file at the workspace root.
pub const LEDGER_FILE: &str = "UNSAFE_LEDGER.md";

/// Lints a single file's source. `rel_path` (workspace-relative,
/// `/`-separated) drives rule scoping; the file need not exist on disk.
/// Ledger reconciliation is a tree-level concern and not performed here.
pub fn lint_file(rel_path: &str, src: &str) -> Vec<TreeFinding> {
    rules::analyze(rel_path, src)
        .findings
        .into_iter()
        .map(|f| TreeFinding {
            file: rel_path.to_string(),
            line: f.line,
            rule: f.rule,
            message: f.message,
        })
        .collect()
}

/// Lints the whole workspace tree rooted at `root`.
pub fn lint_tree(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let mut rs_files = Vec::new();
    collect_rs_files(root, root, &mut rs_files)?;
    rs_files.sort();

    // Per-file scan.
    let mut unsafe_counts: Vec<(String, UnsafeCounts)> = Vec::new();
    for rel in &rs_files {
        let src = fs::read_to_string(root.join(rel))?;
        let rel_slash = rel.to_string_lossy().replace('\\', "/");
        let analysis = rules::analyze(&rel_slash, &src);
        report.files += 1;
        report.suppressed += analysis.suppressed;
        for f in analysis.findings {
            report.findings.push(TreeFinding {
                file: rel_slash.clone(),
                line: f.line,
                rule: f.rule,
                message: f.message,
            });
        }
        if analysis.unsafe_counts.any() {
            unsafe_counts.push((rel_slash, analysis.unsafe_counts));
        }
    }

    // Ledger reconciliation.
    let ledger_path = root.join(LEDGER_FILE);
    let ledger_src = fs::read_to_string(&ledger_path).unwrap_or_default();
    reconcile_ledger(&ledger_src, &unsafe_counts, &mut report);

    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(report)
}

/// Checks the scanner's per-file unsafe counts against the ledger and
/// emits findings for every discrepancy.
pub fn reconcile_ledger(
    ledger_src: &str,
    unsafe_counts: &[(String, UnsafeCounts)],
    report: &mut Report,
) {
    let ledger = ledger::parse(ledger_src);
    for (line, msg) in &ledger.problems {
        report.findings.push(TreeFinding {
            file: LEDGER_FILE.to_string(),
            line: *line,
            rule: "unledgered-unsafe",
            message: format!("ledger parse problem: {msg}"),
        });
    }
    for (file, counts) in unsafe_counts {
        match ledger.entries.get(file) {
            None => report.findings.push(TreeFinding {
                file: file.clone(),
                line: 1,
                rule: "unledgered-unsafe",
                message: format!(
                    "{} unsafe token(s) and {} #[allow(unsafe_code)] \
                     attribute(s) but no section in {LEDGER_FILE}; add one \
                     with a justification and a portable cross-check",
                    counts.unsafe_tokens, counts.allow_attrs
                ),
            }),
            Some(entry) => {
                if entry.unsafe_tokens != Some(counts.unsafe_tokens)
                    || entry.allow_attrs != Some(counts.allow_attrs)
                {
                    report.findings.push(TreeFinding {
                        file: file.clone(),
                        line: 1,
                        rule: "unledgered-unsafe",
                        message: format!(
                            "unsafe census drifted from {LEDGER_FILE}: found \
                             {} unsafe token(s) / {} allow-attr(s), ledger \
                             declares {:?} / {:?}; re-review and update the \
                             ledger entry",
                            counts.unsafe_tokens,
                            counts.allow_attrs,
                            entry.unsafe_tokens,
                            entry.allow_attrs
                        ),
                    });
                }
                if entry.justification.is_empty() {
                    report.findings.push(TreeFinding {
                        file: LEDGER_FILE.to_string(),
                        line: entry.line,
                        rule: "unledgered-unsafe",
                        message: format!("ledger entry for {file} has no justification"),
                    });
                }
                if entry.cross_check.is_empty() {
                    report.findings.push(TreeFinding {
                        file: LEDGER_FILE.to_string(),
                        line: entry.line,
                        rule: "unledgered-unsafe",
                        message: format!(
                            "ledger entry for {file} has no cross-check \
                             pointer (portable test or CI job)"
                        ),
                    });
                }
            }
        }
    }
    // Stale entries: ledgered files with no unsafe left (or gone).
    for (file, entry) in &ledger.entries {
        if !unsafe_counts.iter().any(|(f, _)| f == file) {
            report.findings.push(TreeFinding {
                file: LEDGER_FILE.to_string(),
                line: entry.line,
                rule: "unledgered-unsafe",
                message: format!(
                    "stale ledger entry: {file} contains no unsafe code \
                     (remove the section so the ledger stays exact)"
                ),
            });
        }
    }
}

/// Recursively collects `.rs` files under `dir`, as paths relative to
/// `root`. Skips build output, VCS metadata, and the lint fixture corpus
/// (fixtures are deliberately dirty).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconcile_flags_missing_and_stale_entries() {
        let counts = vec![(
            "crates/core/src/table.rs".to_string(),
            UnsafeCounts {
                unsafe_tokens: 3,
                allow_attrs: 3,
            },
        )];
        // Empty ledger: missing entry.
        let mut report = Report::default();
        reconcile_ledger("", &counts, &mut report);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "unledgered-unsafe");

        // Matching ledger: clean.
        let ledger = "\
## crates/core/src/table.rs
- unsafe-tokens: 3
- allow-attrs: 3
- justification: SIMD.
- cross-check: portable-scan job.
";
        let mut report = Report::default();
        reconcile_ledger(ledger, &counts, &mut report);
        assert!(report.clean(), "{:?}", report.findings);

        // Count drift: flagged.
        let mut report = Report::default();
        let drifted = ledger.replace("unsafe-tokens: 3", "unsafe-tokens: 2");
        reconcile_ledger(&drifted, &counts, &mut report);
        assert_eq!(report.findings.len(), 1);

        // Stale section for a now-safe file: flagged.
        let mut report = Report::default();
        reconcile_ledger(ledger, &[], &mut report);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("stale"));
    }

    #[test]
    fn lint_file_scopes_by_synthetic_path() {
        let src = "fn decode_x(b: &[u8]) -> u8 { b.first().unwrap() }";
        assert!(!lint_file("crates/core/src/persist/wal.rs", src).is_empty());
        assert!(lint_file("crates/core/src/table.rs", src).is_empty());
    }
}
