//! The lint rules, as token-pattern scanners over [`crate::lexer`]
//! output.
//!
//! Three rule families, each pinning a bug class this repo has already
//! paid for once:
//!
//! * **`float-threshold-cast`** — a float→int truncating cast whose
//!   source expression mentions a φ/threshold-like identifier. Five such
//!   sites once inflated `⌊phi·N⌋` thresholds via f64 rounding; the fix
//!   (`bounds::phi_threshold`, exact u128 arithmetic) must not regress.
//!   Applies everywhere, test code included (one of the original sites
//!   was a contract test).
//! * **`decode-*`** — the untrusted-bytes discipline for the wire codecs
//!   and the persistence layer: decode paths return `Err(Corrupt)`,
//!   never panic. `decode-panic` flags `unwrap`/`expect`/`panic!` family
//!   macros; `decode-index` flags panicking `[]` indexing in the
//!   byte-level files; `decode-arith` flags bare `+`/`*` over
//!   length-like operands (the overflow/multiply class); `decode-cast`
//!   flags narrowing `as` casts (use `From`/`try_from`).
//! * **`unledgered-unsafe`** — counting is done here; reconciliation
//!   against `UNSAFE_LEDGER.md` happens at tree level in [`crate`].
//!
//! ## Scoping
//!
//! `decode-*` rules run only in non-test code, inside functions whose
//! names mark them as decode/recovery paths (`decode*`, `read*`,
//! `parse*`, `recover*`, `load*`, `open*`, `verify*`, ...), in
//! `codec.rs`, `item_codec.rs`, `persist/`, and the cluster wire-facing
//! files (anything under `cluster/`, plus the CLI's `cluster.rs` fan-out
//! client — topology files and node responses are untrusted input). The
//! arithmetic, index, and cast rules are further restricted to the
//! byte-level files (`codec.rs`, `item_codec.rs`,
//! `persist/{wal,checkpoint,mod,store}.rs`,
//! `cluster/{topology,wire}.rs`) — the orchestration files
//! (`recover.rs`, `group.rs`, `cluster/ring.rs`) do no raw byte math,
//! and flagging every loop counter there would drown the signal.
//!
//! ## Waivers
//!
//! A finding can be waived with a same-line or preceding-line comment
//! `// lint:allow(rule-id): reason` — the reason is mandatory; an empty
//! one is itself a finding (`bad-waiver`). Waivers are counted in the
//! report so an audit can review them.

use crate::lexer::{lex, Lexed, Tok};

/// One violation (or waiver problem) in one file.
#[derive(Debug, Clone)]
pub struct Finding {
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

/// Per-file `unsafe` evidence, reconciled against the ledger by the
/// tree-level pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UnsafeCounts {
    /// `unsafe` keyword tokens (blocks, `unsafe fn`, `unsafe impl`).
    pub unsafe_tokens: u64,
    /// `#[allow(unsafe_code)]` attributes.
    pub allow_attrs: u64,
}

impl UnsafeCounts {
    pub fn any(&self) -> bool {
        self.unsafe_tokens > 0 || self.allow_attrs > 0
    }
}

/// Everything the scanners learned about one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    pub findings: Vec<Finding>,
    pub unsafe_counts: UnsafeCounts,
    /// Findings silenced by a valid `lint:allow` waiver.
    pub suppressed: usize,
}

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Cast targets the `decode-cast` rule treats as narrowing-capable. The
/// 128-bit and `u64` targets are exempt: in this codebase they are
/// essentially always widening (float→u64 is covered separately by
/// `float-threshold-cast`).
const NARROWING_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "usize", "i8", "i16", "i32", "i64", "isize",
];

/// Identifier substrings that mark a value as length/offset-like —
/// i.e. plausibly derived from untrusted input sizes. Only
/// all-lowercase identifiers are eligible (so `Sized`, `PartialEq`
/// and friends in trait bounds never match).
const TAINT: &[&str] = &[
    "len",
    "size",
    "count",
    "num",
    "offset",
    "pos",
    "cursor",
    "remaining",
    "capacity",
    "payload",
    "total",
    "active",
    "needed",
    "idx",
    "slot",
    "width",
];

/// Identifier substrings that mark a φ/threshold-like quantity.
const THRESHOLDY: &[&str] = &["phi", "threshold", "thresh", "quantile"];

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "try", "type", "unsafe", "use", "where",
    "while", "yield",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// How a file's path scopes the rules.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// codec.rs / item_codec.rs / anything under persist/ — `decode-panic`
    /// applies here.
    pub decode_file: bool,
    /// The byte-level subset where `decode-arith`/`decode-index`/
    /// `decode-cast` also apply.
    pub byte_level: bool,
    /// Integration-test / bench / example file: decode rules off.
    pub test_file: bool,
}

/// Classifies a workspace-relative path.
pub fn classify(rel_path: &str) -> FileClass {
    let rel = rel_path.replace('\\', "/");
    let file_name = rel.rsplit('/').next().unwrap_or(rel.as_str());
    let in_persist = rel.contains("/persist/") || rel.starts_with("persist/");
    let in_cluster = rel.contains("/cluster/") || rel.starts_with("cluster/");
    let decode_file = file_name == "codec.rs"
        || file_name == "item_codec.rs"
        || in_persist
        || in_cluster
        || file_name == "cluster.rs";
    let byte_level = file_name == "codec.rs"
        || file_name == "item_codec.rs"
        || (in_persist
            && matches!(
                file_name,
                "wal.rs" | "checkpoint.rs" | "mod.rs" | "store.rs"
            ))
        || (in_cluster && matches!(file_name, "topology.rs" | "wire.rs"));
    let test_file = rel
        .split('/')
        .any(|part| part == "tests" || part == "benches" || part == "examples");
    FileClass {
        decode_file,
        byte_level,
        test_file,
    }
}

/// Does this function name mark a decode/recovery path over untrusted
/// bytes?
pub fn is_decode_fn(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    const CONTAINS: &[&str] = &[
        "decode",
        "deserial",
        "parse",
        "recover",
        "replay",
        "restore",
        "from_wire",
        "from_bytes",
        "verify",
        "validate",
    ];
    const PREFIXES: &[&str] = &["read", "load", "open"];
    CONTAINS.iter().any(|p| n.contains(p))
        || PREFIXES
            .iter()
            .any(|p| n.starts_with(p) || n.contains(&format!("_{p}")))
}

/// Analyzes one file's source. `rel_path` drives rule scoping only — the
/// file need not exist on disk (fixtures pass synthetic paths).
pub fn analyze(rel_path: &str, src: &str) -> FileAnalysis {
    let class = classify(rel_path);
    let lexed = lex(src);
    let toks = &lexed.toks;
    let n = toks.len();

    let mut analysis = FileAnalysis {
        unsafe_counts: count_unsafe(&lexed),
        ..FileAnalysis::default()
    };
    let in_test = test_mask(&lexed);
    let fn_names = enclosing_fn_names(&lexed);
    let pool = fn_names_pool(&lexed);
    let mut raw: Vec<Finding> = Vec::new();

    let decode_scope = |i: usize| -> bool {
        !class.test_file
            && !in_test[i]
            && fn_names[i].map(|f| is_decode_fn(&pool[f])).unwrap_or(false)
    };

    for i in 0..n {
        match &toks[i].tok {
            // ---- casts: float-threshold-cast (everywhere) and
            // decode-cast (byte-level decode fns) ----
            Tok::Ident(id) if id == "as" => {
                let Some(Tok::Ident(target)) = toks.get(i + 1).map(|t| &t.tok) else {
                    continue;
                };
                if !INT_TYPES.contains(&target.as_str()) {
                    continue;
                }
                let (start, _) = scan_back_expr(&lexed, i);
                let (has_float, has_thresh) = float_and_threshold_evidence(&lexed, start, i);
                if has_float && has_thresh {
                    raw.push(Finding {
                        line: toks[i].line,
                        rule: "float-threshold-cast",
                        message: format!(
                            "float-derived expression cast to {target} near a \
                             phi/threshold identifier; use exact integer \
                             arithmetic (bounds::phi_threshold)"
                        ),
                    });
                }
                if class.byte_level
                    && decode_scope(i)
                    && NARROWING_TARGETS.contains(&target.as_str())
                {
                    raw.push(Finding {
                        line: toks[i].line,
                        rule: "decode-cast",
                        message: format!(
                            "unchecked `as {target}` in a decode path; use \
                             `{target}::from`/`{target}::try_from` so narrowing \
                             is explicit"
                        ),
                    });
                }
            }
            // ---- decode-panic ----
            Tok::Ident(id)
                if class.decode_file
                    && decode_scope(i)
                    && (id == "unwrap" || id == "expect")
                    && matches!(
                        toks.get(i.wrapping_sub(1)).map(|t| &t.tok),
                        Some(Tok::Punct('.'))
                    )
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) =>
            {
                raw.push(Finding {
                    line: toks[i].line,
                    rule: "decode-panic",
                    message: format!(
                        ".{id}() in a decode path can panic on untrusted \
                         input; return Err(Error::Corrupt) instead"
                    ),
                });
            }
            Tok::Ident(id)
                if class.decode_file
                    && decode_scope(i)
                    && matches!(
                        id.as_str(),
                        "panic"
                            | "unreachable"
                            | "todo"
                            | "unimplemented"
                            | "assert"
                            | "assert_eq"
                            | "assert_ne"
                    )
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!'))) =>
            {
                raw.push(Finding {
                    line: toks[i].line,
                    rule: "decode-panic",
                    message: format!(
                        "{id}! in a decode path can panic on untrusted input; \
                         return Err(Error::Corrupt) instead"
                    ),
                });
            }
            // ---- decode-index ----
            Tok::Punct('[')
                if class.byte_level && decode_scope(i) && prev_is_operand_end(&lexed, i) =>
            {
                raw.push(Finding {
                    line: toks[i].line,
                    rule: "decode-index",
                    message: "slice/array indexing in a decode path can panic \
                              on untrusted input; use .get()/.split_at \
                              checked forms"
                        .to_string(),
                });
            }
            // ---- decode-arith ----
            Tok::Punct(op @ ('+' | '*'))
                if class.byte_level && decode_scope(i) && prev_is_operand_end(&lexed, i) =>
            {
                let (start, _) = scan_back_expr(&lexed, i);
                let end = scan_fwd_expr(&lexed, i);
                if any_tainted_ident(&lexed, start, i) || any_tainted_ident(&lexed, i + 1, end) {
                    raw.push(Finding {
                        line: toks[i].line,
                        rule: "decode-arith",
                        message: format!(
                            "bare `{op}` over a length-like value in a decode \
                             path can overflow; use checked_/saturating_ \
                             arithmetic"
                        ),
                    });
                }
            }
            _ => {}
        }
    }

    apply_waivers(&lexed, raw, &mut analysis);
    analysis
}

/// Counts `unsafe` keywords and `#[allow(unsafe_code)]` attributes.
/// `deny`/`forbid`(unsafe_code) deliberately do not count.
fn count_unsafe(lexed: &Lexed) -> UnsafeCounts {
    let toks = &lexed.toks;
    let mut counts = UnsafeCounts::default();
    for i in 0..toks.len() {
        match &toks[i].tok {
            Tok::Ident(id) if id == "unsafe" => counts.unsafe_tokens += 1,
            Tok::Ident(id) if id == "unsafe_code" => {
                let before_paren = i.checked_sub(2).map(|j| &toks[j].tok);
                let is_allow = matches!(
                    toks.get(i.wrapping_sub(1)).map(|t| &t.tok),
                    Some(Tok::Punct('('))
                ) && matches!(before_paren, Some(Tok::Ident(a)) if a == "allow");
                if is_allow {
                    counts.allow_attrs += 1;
                }
            }
            _ => {}
        }
    }
    counts
}

/// Marks every token inside `#[cfg(test)]`-gated items and `#[test]`
/// functions (including the attributes themselves).
fn test_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.toks;
    let n = toks.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if !matches!(toks[i].tok, Tok::Punct('#'))
            || !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            i += 1;
            continue;
        }
        // Collect the attribute group.
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut saw_test = false;
        let mut saw_cfg = false;
        let mut attr_idents = 0usize;
        while j < n && depth > 0 {
            match &toks[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => depth -= 1,
                Tok::Ident(id) => {
                    attr_idents += 1;
                    if id == "test" {
                        saw_test = true;
                    }
                    if id == "cfg" {
                        saw_cfg = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = saw_test && (saw_cfg || attr_idents == 1);
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = j;
        while k < n
            && matches!(toks[k].tok, Tok::Punct('#'))
            && matches!(toks.get(k + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            let mut d = 1usize;
            k += 2;
            while k < n && d > 0 {
                match &toks[k].tok {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => d -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        // Find the item's extent: first `{` (then its match) or `;` at
        // paren/bracket depth 0.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut end = k;
        while end < n {
            match &toks[end].tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Punct('[') => bracket += 1,
                Tok::Punct(']') => bracket -= 1,
                Tok::Punct(';') if paren == 0 && bracket == 0 => break,
                Tok::Punct('{') if paren == 0 && bracket == 0 => {
                    let mut braces = 1i32;
                    end += 1;
                    while end < n && braces > 0 {
                        match &toks[end].tok {
                            Tok::Punct('{') => braces += 1,
                            Tok::Punct('}') => braces -= 1,
                            _ => {}
                        }
                        end += 1;
                    }
                    end -= 1;
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        for m in mask.iter_mut().take((end + 1).min(n)).skip(attr_start) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// The distinct function names in the file, in discovery order.
fn fn_names_pool(lexed: &Lexed) -> Vec<String> {
    let mut pool = Vec::new();
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if let Tok::Ident(id) = &toks[i].tok {
            if id == "fn" {
                if let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) {
                    pool.push(name.clone());
                }
            }
        }
    }
    pool
}

/// For each token, the index (into [`fn_names_pool`]) of the innermost
/// enclosing function body, if any.
fn enclosing_fn_names(lexed: &Lexed) -> Vec<Option<usize>> {
    let toks = &lexed.toks;
    let n = toks.len();
    let mut out = vec![None; n];
    let mut brace_depth = 0i32;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    // (fn pool index, brace depth of its body)
    let mut stack: Vec<(usize, i32)> = Vec::new();
    // Pending fn header: (pool index, paren depth, bracket depth at `fn`)
    let mut pending: Option<(usize, i32, i32)> = None;
    let mut next_pool = 0usize;
    for i in 0..n {
        out[i] = stack.last().map(|&(f, _)| f);
        match &toks[i].tok {
            Tok::Ident(id) if id == "fn" => {
                if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(_))) {
                    pending = Some((next_pool, paren, bracket));
                    next_pool += 1;
                }
            }
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct('[') => bracket += 1,
            Tok::Punct(']') => bracket -= 1,
            Tok::Punct('{') => {
                brace_depth += 1;
                if let Some((f, p, b)) = pending {
                    if paren == p && bracket == b {
                        stack.push((f, brace_depth));
                        pending = None;
                        // The body-open brace itself belongs to the fn.
                        out[i] = Some(f);
                    }
                }
            }
            Tok::Punct('}') => {
                if let Some(&(_, d)) = stack.last() {
                    if d == brace_depth {
                        stack.pop();
                    }
                }
                brace_depth -= 1;
            }
            Tok::Punct(';') => {
                if let Some((_, p, b)) = pending {
                    if paren == p && bracket == b {
                        // Bodyless declaration (trait method signature).
                        pending = None;
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Is `toks[i - 1]` something an expression can end with (making a
/// following `*`/`+`/`[` a binary operator / indexing rather than a
/// deref / unary / type position)?
fn prev_is_operand_end(lexed: &Lexed, i: usize) -> bool {
    let Some(j) = i.checked_sub(1) else {
        return false;
    };
    match &lexed.toks[j].tok {
        Tok::Ident(id) => !is_keyword(id) || id == "self",
        Tok::Num(_) | Tok::Str => true,
        Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('?') => true,
        _ => false,
    }
}

/// Walks backward from the token at `i` (exclusive) across one "simple
/// expression": identifiers, literals, `.`/`::`/`?`/`!` chains, and
/// balanced `(..)`/`[..]` groups. Returns the start index of the
/// expression and the number of tokens covered. Bounded at 64 tokens.
fn scan_back_expr(lexed: &Lexed, i: usize) -> (usize, usize) {
    let toks = &lexed.toks;
    let mut j = i;
    let mut depth = 0i32;
    let mut budget = 64usize;
    while j > 0 && budget > 0 {
        budget -= 1;
        let t = &toks[j - 1].tok;
        if depth > 0 {
            match t {
                Tok::Punct(')') | Tok::Punct(']') => depth += 1,
                Tok::Punct('(') | Tok::Punct('[') => depth -= 1,
                _ => {}
            }
            j -= 1;
            continue;
        }
        match t {
            Tok::Ident(id) if !is_keyword(id) || id == "as" || id == "self" => j -= 1,
            Tok::Num(_) | Tok::Str | Tok::Lifetime => j -= 1,
            Tok::Punct('.') | Tok::Punct(':') | Tok::Punct('?') | Tok::Punct('!') => j -= 1,
            Tok::Punct(')') | Tok::Punct(']') => {
                depth += 1;
                j -= 1;
            }
            _ => break,
        }
    }
    (j, i - j)
}

/// Walks forward from `i` (exclusive) across one simple expression;
/// returns the exclusive end index. Bounded at 64 tokens.
fn scan_fwd_expr(lexed: &Lexed, i: usize) -> usize {
    let toks = &lexed.toks;
    let n = toks.len();
    let mut j = i + 1;
    let mut depth = 0i32;
    let mut budget = 64usize;
    while j < n && budget > 0 {
        budget -= 1;
        let t = &toks[j].tok;
        if depth > 0 {
            match t {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                _ => {}
            }
            j += 1;
            continue;
        }
        match t {
            Tok::Ident(id) if !is_keyword(id) || id == "as" || id == "self" => j += 1,
            Tok::Num(_) | Tok::Str => j += 1,
            Tok::Punct('.') | Tok::Punct(':') | Tok::Punct('?') => j += 1,
            Tok::Punct('(') | Tok::Punct('[') => {
                depth += 1;
                j += 1;
            }
            _ => break,
        }
    }
    j
}

/// Float evidence (literal, f32/f64, rounding method) and
/// φ/threshold-identifier evidence within `toks[start..end]`.
fn float_and_threshold_evidence(lexed: &Lexed, start: usize, end: usize) -> (bool, bool) {
    let mut has_float = false;
    let mut has_thresh = false;
    for t in &lexed.toks[start..end] {
        match &t.tok {
            Tok::Num(text) if is_float_literal(text) => has_float = true,
            Tok::Num(_) => {}
            Tok::Ident(id) => {
                if id == "f64"
                    || id == "f32"
                    || matches!(
                        id.as_str(),
                        "ceil"
                            | "floor"
                            | "round"
                            | "trunc"
                            | "sqrt"
                            | "powf"
                            | "powi"
                            | "exp"
                            | "ln"
                    )
                {
                    has_float = true;
                }
                let lower = id.to_ascii_lowercase();
                if THRESHOLDY.iter().any(|p| lower.contains(p)) {
                    has_thresh = true;
                }
            }
            _ => {}
        }
    }
    (has_float, has_thresh)
}

fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x")
        || text.starts_with("0X")
        || text.starts_with("0b")
        || text.starts_with("0o")
    {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.contains(['e', 'E'])
}

/// Does `toks[start..end]` mention a length-like lowercase identifier?
fn any_tainted_ident(lexed: &Lexed, start: usize, end: usize) -> bool {
    lexed.toks[start..end.min(lexed.toks.len())]
        .iter()
        .any(|t| match &t.tok {
            Tok::Ident(id) => {
                !id.chars().any(|c| c.is_ascii_uppercase()) && TAINT.iter().any(|p| id.contains(p))
            }
            _ => false,
        })
}

/// Filters `raw` findings through `lint:allow` waiver comments and
/// reports malformed waivers.
fn apply_waivers(lexed: &Lexed, raw: Vec<Finding>, analysis: &mut FileAnalysis) {
    // (line, rules, has_reason)
    let mut waivers: Vec<(u32, Vec<String>, bool)> = Vec::new();
    for (line, text) in &lexed.comments {
        let Some(at) = text.find("lint:allow(") else {
            continue;
        };
        let rest = &text[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            analysis.findings.push(Finding {
                line: *line,
                rule: "bad-waiver",
                message: "unclosed lint:allow(...) waiver".to_string(),
            });
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        let has_reason = !reason.is_empty();
        if rules.is_empty() || !has_reason {
            analysis.findings.push(Finding {
                line: *line,
                rule: "bad-waiver",
                message: "lint:allow waiver needs a rule list and a reason: \
                          `// lint:allow(rule-id): reason`"
                    .to_string(),
            });
        }
        waivers.push((*line, rules, has_reason));
    }
    for finding in raw {
        let waived = waivers.iter().any(|(line, rules, has_reason)| {
            *has_reason
                && (finding.line == *line || finding.line == line.saturating_add(1))
                && rules.iter().any(|r| r == finding.rule)
        });
        if waived {
            analysis.suppressed += 1;
        } else {
            analysis.findings.push(finding);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(rel: &str, src: &str) -> Vec<Finding> {
        analyze(rel, src).findings
    }

    fn rules_of(found: &[Finding]) -> Vec<&'static str> {
        found.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn float_threshold_cast_is_flagged_anywhere() {
        let src = "fn f(phi: f64, n: u64) -> u64 { (phi * n as f64) as u64 }";
        let found = findings("crates/core/src/select.rs", src);
        assert!(
            rules_of(&found).contains(&"float-threshold-cast"),
            "{found:?}"
        );
        // Exact integer math with no float involvement is clean.
        let clean = "fn f(phi_num: u64, n: u64) -> u64 { phi_num.saturating_mul(n) }";
        assert!(findings("crates/core/src/select.rs", clean).is_empty());
        // Float math with no threshold identifier is clean (a-priori
        // error estimates legitimately use f64).
        let est = "fn f(k: f64, n: u64) -> u64 { (n as f64 / k).ceil() as u64 }";
        assert!(findings("crates/core/src/engine.rs", est).is_empty());
    }

    #[test]
    fn decode_panics_flagged_only_in_decode_fns_of_decode_files() {
        let src = r#"
            fn decode_frame(bytes: &[u8]) -> u32 { bytes.first().unwrap(); panic!("no") }
            fn encode_frame(out: &mut Vec<u8>) { out.first().unwrap(); }
        "#;
        let found = findings("crates/core/src/persist/wal.rs", src);
        assert_eq!(
            rules_of(&found),
            vec!["decode-panic", "decode-panic"],
            "{found:?}"
        );
        // Same source outside the decode files: clean.
        assert!(findings("crates/core/src/table.rs", src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = r#"
            fn decode_x(b: &[u8]) -> u8 { 0 }
            #[cfg(test)]
            mod tests {
                fn decode_helper(b: &[u8]) -> u8 { b.first().unwrap() + b[0] }
            }
        "#;
        assert!(findings("crates/core/src/codec.rs", src).is_empty());
    }

    #[test]
    fn cluster_wire_files_are_decode_scoped() {
        let topo = classify("crates/core/src/cluster/topology.rs");
        assert!(topo.decode_file && topo.byte_level);
        let wire = classify("crates/core/src/cluster/wire.rs");
        assert!(wire.decode_file && wire.byte_level);
        // The ring does hashing, not byte decoding: panic discipline
        // only, no arithmetic/index scoping.
        let ring = classify("crates/core/src/cluster/ring.rs");
        assert!(ring.decode_file && !ring.byte_level);
        // The CLI fan-out client parses node responses: panic
        // discipline in its decode fns.
        let cli = classify("crates/cli/src/cluster.rs");
        assert!(cli.decode_file && !cli.byte_level);
        let src = r#"
            fn decode_reply(bytes: &[u8]) -> u8 { bytes.first().unwrap() }
        "#;
        let found = findings("crates/core/src/cluster/wire.rs", src);
        assert_eq!(rules_of(&found), vec!["decode-panic"], "{found:?}");
    }

    #[test]
    fn decode_index_and_arith_flag_byte_level_files() {
        let src = r#"
            fn read_header(bytes: &[u8], payload_len: usize) -> u8 {
                let x = bytes[payload_len];
                let total = payload_len + 8;
                x
            }
        "#;
        let found = findings("crates/core/src/persist/wal.rs", src);
        let rules = rules_of(&found);
        assert!(rules.contains(&"decode-index"), "{found:?}");
        assert!(rules.contains(&"decode-arith"), "{found:?}");
        // recover.rs is orchestration: index/arith off, panic still on.
        let found = findings("crates/core/src/persist/recover.rs", src);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn untainted_arithmetic_is_clean() {
        let src = r#"
            fn read_uvarint(value: u64, i: usize) -> u64 {
                let shifted = value << (7 * i);
                let next = i + 1;
                shifted + next as u64
            }
        "#;
        // `7 * i` and `i + 1` carry no length-like identifier; the final
        // `as u64` is a widening (exempt) target.
        let found = findings("crates/core/src/item_codec.rs", src);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn narrowing_casts_flagged_in_decode_paths() {
        let src = "fn decode_len(raw: u64) -> usize { raw as usize }";
        let found = findings("crates/core/src/codec.rs", src);
        assert_eq!(rules_of(&found), vec!["decode-cast"]);
        // Widening u64 target: clean.
        let src = "fn decode_len(raw: u32) -> u64 { raw as u64 }";
        assert!(findings("crates/core/src/codec.rs", src).is_empty());
    }

    #[test]
    fn unsafe_counting_separates_allow_from_forbid() {
        let src = r#"
            #![forbid(unsafe_code)]
            #[allow(unsafe_code)]
            unsafe fn f() {}
            fn g() { let x = unsafe { 1 }; }
        "#;
        let analysis = analyze("crates/core/src/table.rs", src);
        assert_eq!(analysis.unsafe_counts.unsafe_tokens, 2);
        assert_eq!(analysis.unsafe_counts.allow_attrs, 1);
    }

    #[test]
    fn waivers_suppress_with_reason_and_fail_without() {
        let src = r#"
            fn decode_x(bytes: &[u8]) -> u8 {
                // lint:allow(decode-index): length pinned by caller contract
                bytes[0]
            }
        "#;
        let analysis = analyze("crates/core/src/codec.rs", src);
        assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
        assert_eq!(analysis.suppressed, 1);

        let src = r#"
            fn decode_x(bytes: &[u8]) -> u8 {
                // lint:allow(decode-index)
                bytes[0]
            }
        "#;
        let analysis = analyze("crates/core/src/codec.rs", src);
        let rules = rules_of(&analysis.findings);
        assert!(rules.contains(&"bad-waiver"), "{rules:?}");
        assert!(rules.contains(&"decode-index"), "{rules:?}");
    }

    #[test]
    fn deref_and_trait_bounds_are_not_arithmetic() {
        let src = r#"
            fn read_x<T: Clone + Send>(buf: &mut &[u8]) -> u8 {
                let v = *buf;
                v.first().copied().unwrap_or(0)
            }
        "#;
        assert!(findings("crates/core/src/codec.rs", src).is_empty());
    }
}
