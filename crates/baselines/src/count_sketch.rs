//! The CountSketch (Charikar, Chen & Farach-Colton, ICALP 2002) — the
//! second linear-sketch comparator of §1.3.
//!
//! Like Count-Min but with a ±1 sign hash per row and a **median** estimate
//! over rows, making the estimator unbiased with error proportional to the
//! stream's ℓ₂ norm (tighter than Count-Min on skewed streams, at the cost
//! of two-sided error).

use streamfreq_core::hashing::Hash64;
use streamfreq_core::rng::split_mix64_mix;
use streamfreq_core::FrequencyEstimator;

/// CountSketch with `depth` rows of `width` signed counters.
#[derive(Clone, Debug)]
pub struct CountSketch {
    rows: Vec<Vec<i64>>,
    row_seeds: Vec<u64>,
    width: usize,
    stream_weight: u64,
}

impl CountSketch {
    /// Creates a `depth × width` sketch seeded deterministically.
    ///
    /// # Panics
    /// Panics if `depth` or `width` is zero.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(depth > 0, "depth must be positive");
        assert!(width > 0, "width must be positive");
        let row_seeds = (0..depth as u64)
            .map(|r| split_mix64_mix(seed ^ r.wrapping_mul(0xD1B5_4A32_D192_ED03)))
            .collect();
        Self {
            rows: vec![vec![0; width]; depth],
            row_seeds,
            width,
            stream_weight: 0,
        }
    }

    /// Cell index and ±1 sign for `item` in `row`.
    #[inline]
    fn cell_sign(&self, row: usize, item: u64) -> (usize, i64) {
        let h = split_mix64_mix(item.hash64() ^ self.row_seeds[row]);
        // low bits index the row; the top bit carries the sign
        let cell = (h as usize >> 1) % self.width;
        let sign = if h & 1 == 0 { 1 } else { -1 };
        (cell, sign)
    }

    /// Bytes of counter storage.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * self.width * 8
    }
}

impl FrequencyEstimator for CountSketch {
    fn update(&mut self, item: u64, weight: u64) {
        self.stream_weight += weight;
        for row in 0..self.rows.len() {
            let (c, s) = self.cell_sign(row, item);
            self.rows[row][c] += s * weight as i64;
        }
    }

    /// Median-of-rows estimate, clamped to zero (frequencies are
    /// non-negative in insertion streams).
    fn estimate(&self, item: u64) -> u64 {
        let mut ests: Vec<i64> = (0..self.rows.len())
            .map(|row| {
                let (c, s) = self.cell_sign(row, item);
                s * self.rows[row][c]
            })
            .collect();
        ests.sort_unstable();
        let mid = ests.len() / 2;
        let median = if ests.len() % 2 == 1 {
            ests[mid]
        } else {
            (ests[mid - 1] + ests[mid]) / 2
        };
        median.max(0) as u64
    }

    fn stream_weight(&self) -> u64 {
        self.stream_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn single_item_is_exact() {
        let mut cs = CountSketch::new(5, 256, 11);
        cs.update(7, 12345);
        assert_eq!(cs.estimate(7), 12345);
    }

    #[test]
    fn heavy_items_recovered_accurately() {
        let mut cs = CountSketch::new(5, 512, 5);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        // few heavy + many light items
        for hot in 0..5u64 {
            cs.update(hot, 50_000);
            truth.insert(hot, 50_000);
        }
        let mut x = 1u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = 100 + (x >> 33) % 5_000;
            cs.update(item, 1);
            *truth.entry(item).or_insert(0) += 1;
        }
        for hot in 0..5u64 {
            let est = cs.estimate(hot);
            let f = truth[&hot];
            let rel = est.abs_diff(f) as f64 / f as f64;
            assert!(rel < 0.05, "hot item {hot}: rel error {rel}");
        }
    }

    #[test]
    fn estimates_are_nonnegative() {
        let mut cs = CountSketch::new(3, 16, 2);
        let mut x = 1u64;
        for _ in 0..1_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(1);
            cs.update((x >> 32) % 100, 1);
        }
        for item in 0..200u64 {
            let _ = cs.estimate(item); // must not underflow/panic
        }
    }
}
