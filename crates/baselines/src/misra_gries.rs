//! The classic Misra-Gries algorithm (Algorithm 1 of the paper;
//! Misra & Gries, *Finding Repeated Elements*, 1982).
//!
//! `k` counters in a hash map; a unit update to an untracked item when all
//! counters are assigned decrements **every** counter by one and releases
//! the zeroed ones. Estimates are the stored counts (`0` when untracked),
//! so `0 ≤ fᵢ − f̂ᵢ ≤ N/(k+1)` (Lemma 1) and the Berinde et al. tail bound
//! (Lemma 2) hold.
//!
//! This is the reference point every other algorithm in the repository is
//! measured against conceptually; it handles **unit updates only** in O(1)
//! amortized time. [`MisraGries::update`] accepts weights by reduction to
//! unit case (RTUC-MG, §1.3.4) and therefore costs Θ(Δ) — the very
//! shortcoming the paper's weighted algorithms remove.

use std::collections::HashMap;

use streamfreq_core::{CounterSummary, FrequencyEstimator};

/// Misra-Gries summary with `k` counters (unit-update algorithm).
#[derive(Clone, Debug)]
pub struct MisraGries {
    counters: HashMap<u64, u64>,
    k: usize,
    stream_weight: u64,
    num_decrement_ops: u64,
}

impl MisraGries {
    /// Creates a summary with `k` counters.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            counters: HashMap::with_capacity(k + 1),
            k,
            stream_weight: 0,
            num_decrement_ops: 0,
        }
    }

    /// Processes a unit update (Algorithm 1's `Update(i, +1)`).
    pub fn update_unit(&mut self, item: u64) {
        self.stream_weight += 1;
        if let Some(c) = self.counters.get_mut(&item) {
            *c += 1;
            return;
        }
        if self.counters.len() < self.k {
            self.counters.insert(item, 1);
            return;
        }
        self.decrement_all();
    }

    /// Algorithm 1's `DecrementCounters()`: reduce every counter by one and
    /// unassign the zeroed ones.
    fn decrement_all(&mut self) {
        self.num_decrement_ops += 1;
        self.counters.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    /// Number of `DecrementCounters()` operations performed so far. Lemma 1
    /// bounds this by `N/(k+1)`.
    pub fn num_decrement_ops(&self) -> u64 {
        self.num_decrement_ops
    }

    /// Sum of all stored counters (the `C` of the paper's analyses).
    pub fn counter_sum(&self) -> u64 {
        self.counters.values().sum()
    }
}

impl FrequencyEstimator for MisraGries {
    /// Weighted update by reduction to unit case (RTUC-MG): Θ(weight) time.
    fn update(&mut self, item: u64, weight: u64) {
        for _ in 0..weight {
            self.update_unit(item);
        }
    }

    fn estimate(&self, item: u64) -> u64 {
        self.counters.get(&item).copied().unwrap_or(0)
    }

    fn stream_weight(&self) -> u64 {
        self.stream_weight
    }
}

impl CounterSummary for MisraGries {
    fn counters(&self) -> Vec<(u64, u64)> {
        self.counters.iter().map(|(&i, &c)| (i, c)).collect()
    }

    fn num_counters(&self) -> usize {
        self.counters.len()
    }

    fn max_counters(&self) -> usize {
        self.k
    }

    fn max_error(&self) -> u64 {
        // Every estimate satisfies f − f̂ ≤ #decrements.
        self.num_decrement_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_when_under_capacity() {
        let mut mg = MisraGries::new(10);
        for _ in 0..5 {
            mg.update_unit(1);
        }
        mg.update_unit(2);
        assert_eq!(mg.estimate(1), 5);
        assert_eq!(mg.estimate(2), 1);
        assert_eq!(mg.estimate(3), 0);
        assert_eq!(mg.num_decrement_ops(), 0);
    }

    #[test]
    fn textbook_decrement_example() {
        // k=2 counters, stream a a a b c: after `c` triggers a decrement,
        // a survives with 2, b is gone, c was never assigned.
        let mut mg = MisraGries::new(2);
        for item in [1, 1, 1, 2, 3] {
            mg.update_unit(item);
        }
        assert_eq!(mg.estimate(1), 2);
        assert_eq!(mg.estimate(2), 0);
        assert_eq!(mg.estimate(3), 0);
        assert_eq!(mg.num_decrement_ops(), 1);
    }

    #[test]
    fn lemma1_error_bound_holds() {
        let mut mg = MisraGries::new(9);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut x = 7u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (x >> 33) % 100;
            mg.update_unit(item);
            *truth.entry(item).or_insert(0) += 1;
        }
        let n = mg.stream_weight();
        let bound = n / 10; // N/(k+1)
        for (&item, &f) in &truth {
            let est = mg.estimate(item);
            assert!(est <= f, "MG must underestimate");
            assert!(f - est <= bound, "Lemma 1 violated for {item}");
        }
    }

    #[test]
    fn decrement_count_bounded_by_lemma1() {
        let mut mg = MisraGries::new(9);
        for i in 0..10_000u64 {
            mg.update_unit(i); // all-distinct stream maximizes decrements
        }
        assert!(mg.num_decrement_ops() <= 10_000 / 10);
    }

    #[test]
    fn counter_sum_identity() {
        // N - C = d·(k+1) exactly, from the proof of Lemma 1.
        let mut mg = MisraGries::new(4);
        for i in 0..5_000u64 {
            mg.update_unit(i % 23);
        }
        let n = mg.stream_weight();
        let c = mg.counter_sum();
        let d = mg.num_decrement_ops();
        assert_eq!(n - c, d * 5);
    }

    #[test]
    fn weighted_update_reduces_to_unit_case() {
        let mut a = MisraGries::new(5);
        let mut b = MisraGries::new(5);
        let updates = [(1u64, 3u64), (2, 5), (1, 2), (3, 4)];
        for &(i, w) in &updates {
            a.update(i, w);
            for _ in 0..w {
                b.update_unit(i);
            }
        }
        for item in 1..=3 {
            assert_eq!(a.estimate(item), b.estimate(item));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        MisraGries::new(0);
    }
}
