//! Prior-work merge procedures for counter-based summaries (§3.1):
//! the Agarwal et al. merge, in the two implementations Figure 4
//! benchmarks against.
//!
//! * [`ach_merge_sort`] — **ACH+13**: add the counters of both summaries in
//!   a fresh hash table of capacity 2k, *sort* them, keep the top `k`.
//!   Ω(k log k).
//! * [`ach_merge_quickselect`] — **Hoa61**: identical, except the k-th
//!   largest counter is found with Quickselect and a second pass collects
//!   the survivors. O(k), but with the constant factors the paper calls "a
//!   runtime bottleneck in practice".
//!
//! Both allocate ~2k scratch entries on every merge — the space overhead
//! (2.5× total, §4.5) that Algorithm 5's in-place replay avoids.
//!
//! Following the paper's description of its benchmark comparator, the
//! merge *truncates* to the top `k` counters. The original Agarwal et al.
//! procedure additionally subtracts the (k+1)-st largest value from the
//! survivors to restore the Misra-Gries invariant; pass
//! `subtract_excess = true` to [`ach_merge`] for that variant (estimates
//! then stay underestimates, Equation (6)).

use std::collections::HashMap;

use streamfreq_core::select::select_nth_largest;

/// The result of a prior-work merge: at most `k` counters with exact-map
/// lookups. Implements enough of the summary interface for error
/// measurement and for feeding further merges (aggregation trees).
#[derive(Clone, Debug)]
pub struct MergedCounters {
    map: HashMap<u64, u64>,
    k: usize,
}

impl MergedCounters {
    /// The estimate for `item`: its merged counter, or 0 if not retained.
    pub fn estimate(&self, item: u64) -> u64 {
        self.map.get(&item).copied().unwrap_or(0)
    }

    /// The retained `(item, count)` pairs (unordered).
    pub fn counters(&self) -> Vec<(u64, u64)> {
        self.map.iter().map(|(&i, &c)| (i, c)).collect()
    }

    /// Number of retained counters (≤ k).
    pub fn num_counters(&self) -> usize {
        self.map.len()
    }

    /// The capacity this summary was merged to.
    pub fn max_counters(&self) -> usize {
        self.k
    }
}

/// Which selection procedure identifies the top-k counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionMethod {
    /// Full sort of the combined counters (ACH+13 as-published).
    Sort,
    /// Quickselect for the k-th largest, then a filtering pass (the
    /// paper's proposed Hoa61 variant of the same procedure).
    Quickselect,
}

/// Merges two counter lists with the Agarwal et al. procedure.
///
/// `subtract_excess = false` reproduces the comparator benchmarked in
/// Figure 4 (truncate to top k); `true` additionally subtracts the
/// (k+1)-st largest combined counter from the survivors, as in the
/// original Agarwal et al. analysis.
///
/// # Panics
/// Panics if `k` is zero.
pub fn ach_merge(
    a: &[(u64, u64)],
    b: &[(u64, u64)],
    k: usize,
    method: SelectionMethod,
    subtract_excess: bool,
) -> MergedCounters {
    assert!(k > 0, "k must be positive");
    // Step 1-2: fresh table of capacity 2k; add all counters.
    let mut combined: HashMap<u64, u64> = HashMap::with_capacity(2 * k);
    for &(item, count) in a.iter().chain(b.iter()) {
        *combined.entry(item).or_insert(0) += count;
    }
    if combined.len() <= k {
        // Nothing to discard — and nothing to subtract either, since no
        // (k+1)-st largest counter exists.
        return MergedCounters { map: combined, k };
    }
    // Step 3: find the k-th and (k+1)-st largest combined values.
    let (kth, excess) = match method {
        SelectionMethod::Sort => {
            let mut values: Vec<u64> = combined.values().copied().collect();
            values.sort_unstable_by(|x, y| y.cmp(x));
            (values[k - 1], values[k])
        }
        SelectionMethod::Quickselect => {
            let mut values: Vec<u64> = combined.values().copied().collect();
            let kth = select_nth_largest(&mut values, k - 1);
            let excess = select_nth_largest(&mut values, k);
            (kth, excess)
        }
    };
    let decrement = if subtract_excess { excess } else { 0 };
    // Step 4: keep the top k (ties broken arbitrarily but capped at k),
    // applying the optional decrement.
    let mut map = HashMap::with_capacity(k);
    let mut kept = 0usize;
    // strictly-greater first, then fill remaining quota with ties at kth
    for (&item, &count) in &combined {
        if count > kth && kept < k {
            if count > decrement {
                map.insert(item, count - decrement);
            }
            kept += 1;
        }
    }
    for (&item, &count) in &combined {
        if count == kth && kept < k {
            if count > decrement {
                map.insert(item, count - decrement);
            }
            kept += 1;
        }
    }
    MergedCounters { map, k }
}

/// ACH+13: the sort-based Agarwal et al. merge, truncating to top k.
pub fn ach_merge_sort(a: &[(u64, u64)], b: &[(u64, u64)], k: usize) -> MergedCounters {
    ach_merge(a, b, k, SelectionMethod::Sort, false)
}

/// Hoa61: the Quickselect-based Agarwal et al. merge, truncating to top k.
pub fn ach_merge_quickselect(a: &[(u64, u64)], b: &[(u64, u64)], k: usize) -> MergedCounters {
    ach_merge(a, b, k, SelectionMethod::Quickselect, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(pairs: &[(u64, u64)]) -> Vec<(u64, u64)> {
        pairs.to_vec()
    }

    #[test]
    fn disjoint_small_merge_keeps_everything() {
        let a = counters(&[(1, 10), (2, 20)]);
        let b = counters(&[(3, 30)]);
        let m = ach_merge_sort(&a, &b, 8);
        assert_eq!(m.num_counters(), 3);
        assert_eq!(m.estimate(1), 10);
        assert_eq!(m.estimate(3), 30);
    }

    #[test]
    fn overlapping_items_sum() {
        let a = counters(&[(1, 10), (2, 20)]);
        let b = counters(&[(1, 5), (3, 1)]);
        let m = ach_merge_sort(&a, &b, 8);
        assert_eq!(m.estimate(1), 15);
    }

    #[test]
    fn truncates_to_top_k() {
        let a = counters(&[(1, 100), (2, 90), (3, 80)]);
        let b = counters(&[(4, 70), (5, 60), (6, 50)]);
        let m = ach_merge_sort(&a, &b, 3);
        assert_eq!(m.num_counters(), 3);
        assert_eq!(m.estimate(1), 100);
        assert_eq!(m.estimate(3), 80);
        assert_eq!(m.estimate(4), 0, "rank 4 must be discarded");
    }

    #[test]
    fn sort_and_quickselect_agree() {
        // Build two pseudo-random counter sets and check both selection
        // methods retain identical counters (up to ties, absent here).
        let mut x = 31u64;
        let mut step = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        };
        let a: Vec<(u64, u64)> = (0..200).map(|i| (i, step() % 100_000 + 1)).collect();
        let b: Vec<(u64, u64)> = (100..300).map(|i| (i, step() % 100_000 + 1)).collect();
        let s = ach_merge_sort(&a, &b, 64);
        let q = ach_merge_quickselect(&a, &b, 64);
        let mut sc = s.counters();
        let mut qc = q.counters();
        sc.sort_unstable();
        qc.sort_unstable();
        assert_eq!(sc, qc);
    }

    #[test]
    fn subtraction_variant_underestimates() {
        let a = counters(&[(1, 100), (2, 90), (3, 80)]);
        let b = counters(&[(4, 70), (5, 60)]);
        let m = ach_merge(&a, &b, 3, SelectionMethod::Sort, true);
        // (k+1)-st largest = 70 ⇒ survivors lose 70.
        assert_eq!(m.estimate(1), 30);
        assert_eq!(m.estimate(2), 20);
        assert_eq!(m.estimate(3), 10);
        assert_eq!(m.estimate(4), 0);
    }

    #[test]
    fn ties_at_threshold_respect_capacity() {
        let a = counters(&[(1, 50), (2, 50), (3, 50), (4, 50)]);
        let b = counters(&[(5, 50), (6, 50)]);
        let m = ach_merge_sort(&a, &b, 3);
        assert_eq!(m.num_counters(), 3, "ties must not exceed k");
        for (_, c) in m.counters() {
            assert_eq!(c, 50);
        }
    }

    #[test]
    fn merge_supports_aggregation_trees() {
        // merge of merges: feed MergedCounters back in.
        let a = counters(&[(1, 10), (2, 9)]);
        let b = counters(&[(3, 8), (4, 7)]);
        let c = counters(&[(5, 6), (6, 5)]);
        let ab = ach_merge_sort(&a, &b, 4);
        let abc = ach_merge_sort(&ab.counters(), &c, 4);
        assert_eq!(abc.num_counters(), 4);
        assert_eq!(abc.estimate(1), 10);
        assert_eq!(abc.estimate(6), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        ach_merge_sort(&[], &[], 0);
    }
}
