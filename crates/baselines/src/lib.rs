//! # streamfreq-baselines
//!
//! Every prior-work algorithm the paper (Anderson et al., IMC 2017)
//! discusses or benchmarks against, implemented from scratch so the
//! evaluation figures can be regenerated honestly:
//!
//! | module | algorithm | paper role |
//! |---|---|---|
//! | [`misra_gries`] | Misra-Gries (Algorithm 1) | the base algorithm being optimized |
//! | [`space_saving`] | Space Saving on a min-heap — SSH / **MHE** | principal speed baseline (Figs 1–2) |
//! | [`stream_summary`] | Space Saving on Stream Summary — SSL | the "conventional wisdom" O(1) unit-update structure (§1.1) |
//! | [`rbmc`] | Berinde et al. reduce-by-min-counter | principal accuracy baseline (Figs 1–2) |
//! | [`rtuc`] | reduce-to-unit-case wrappers | semantic reference for isomorphism tests (§1.4) |
//! | [`count_min`], [`count_sketch`] | linear sketches | the sketch class counter-based algorithms beat (§1.3) |
//! | [`exact`] | exact hash-map counts | ground truth + the §4.1 "trivial solution" |
//! | [`merge_prior`] | Agarwal et al. merge (sort & quickselect) | merge baselines of Figure 4 |
//!
//! All streaming algorithms implement
//! [`streamfreq_core::FrequencyEstimator`], and the counter-based ones also
//! implement [`streamfreq_core::CounterSummary`], so the benchmark harness
//! treats them interchangeably.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod count_min;
pub mod count_sketch;
pub mod exact;
pub mod merge_prior;
pub mod misra_gries;
pub mod rbmc;
pub mod rtuc;
pub mod space_saving;
pub mod stream_summary;

pub use count_min::CountMinSketch;
pub use count_sketch::CountSketch;
pub use exact::ExactCounter;
pub use merge_prior::{ach_merge, ach_merge_quickselect, ach_merge_sort, MergedCounters};
pub use misra_gries::MisraGries;
pub use rbmc::Rbmc;
pub use rtuc::{RtucMg, RtucSs};
pub use space_saving::SpaceSavingHeap;
pub use stream_summary::StreamSummary;
