//! Space Saving with a min-heap — SSH for unit updates, **MHE** for
//! weighted updates (§1.3.3 and §1.3.5 of the paper; Metwally, Agrawal &
//! El Abbadi, ICDT 2005).
//!
//! The summary keeps `k` counters in a binary min-heap keyed by count, plus
//! a hash map from item to heap position. An update to a tracked item
//! increases its count and sifts it down the heap; an update to an
//! untracked item when the summary is full *overwrites* the minimum
//! counter: the new item inherits `min + Δ`.
//!
//! Space Saving **overestimates**: `fᵢ ≤ f̂ᵢ ≤ fᵢ + min-counter`, and for
//! untracked items the estimate is the minimum counter itself. This is the
//! `O(log k)`-per-update, hash-map-plus-heap implementation that prior work
//! on weighted streams (e.g. hierarchical heavy hitters \[18\]) adopted, and
//! the principal speed baseline of Figures 1–2.

use std::collections::HashMap;

use streamfreq_core::{CounterSummary, FrequencyEstimator};

#[derive(Clone, Copy, Debug)]
struct Slot {
    item: u64,
    count: u64,
    /// Count of the counter this item overwrote (the standard Space Saving
    /// per-item error term ε): `count − err ≤ fᵢ ≤ count`.
    err: u64,
}

/// Space Saving summary with `k` counters over a min-heap (SSH / MHE).
#[derive(Clone, Debug)]
pub struct SpaceSavingHeap {
    /// Binary min-heap by `count`; `heap[0]` is the minimum counter.
    heap: Vec<Slot>,
    /// item → current heap index.
    pos: HashMap<u64, usize>,
    k: usize,
    stream_weight: u64,
}

impl SpaceSavingHeap {
    /// Creates a summary with `k` counters.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            heap: Vec::with_capacity(k),
            pos: HashMap::with_capacity(k),
            k,
            stream_weight: 0,
        }
    }

    /// The minimum counter value (0 while under capacity) — Space Saving's
    /// estimate for untracked items and its global error bound.
    pub fn min_counter(&self) -> u64 {
        if self.heap.len() < self.k {
            0
        } else {
            self.heap[0].count
        }
    }

    /// Sum of all counters. For Space Saving this equals the weighted
    /// stream length `N` exactly (every update adds its full weight).
    pub fn counter_sum(&self) -> u64 {
        self.heap.iter().map(|s| s.count).sum()
    }

    /// True if the item currently holds a counter.
    pub fn is_tracked(&self, item: u64) -> bool {
        self.pos.contains_key(&item)
    }

    /// Approximate heap footprint: 24 bytes per heap slot plus the
    /// position map (~17 bytes per entry at hashbrown's 7/8 load). This is
    /// the "nearly doubles the space" overhead of §1.3.3 relative to the
    /// 24-bytes-per-counter optimized table, and drives the equal-space
    /// panels of Figures 1–2.
    pub fn memory_bytes(&self) -> usize {
        self.heap.capacity().max(self.k) * std::mem::size_of::<Slot>()
            + (self.k * 8 / 7) * (std::mem::size_of::<(u64, usize)>() + 1)
    }

    /// Largest `k` whose [`SpaceSavingHeap::memory_bytes`] fits in `bytes`
    /// (for equal-space comparisons).
    pub fn counters_for_bytes(bytes: usize) -> usize {
        let per_counter =
            std::mem::size_of::<Slot>() + (std::mem::size_of::<(u64, usize)>() + 1) * 8 / 7;
        (bytes / per_counter).max(1)
    }

    /// Certified bounds for a tracked item: `(count − err, count)`;
    /// `(0, min_counter)` for untracked items.
    pub fn bounds(&self, item: u64) -> (u64, u64) {
        match self.pos.get(&item) {
            Some(&i) => {
                let s = self.heap[i];
                (s.count - s.err, s.count)
            }
            None => (0, self.min_counter()),
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < len && self.heap[l].count < self.heap[smallest].count {
                smallest = l;
            }
            if r < len && self.heap[r].count < self.heap[smallest].count {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.swap_slots(i, smallest);
            i = smallest;
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].count <= self.heap[i].count {
                return;
            }
            self.swap_slots(i, parent);
            i = parent;
        }
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos.insert(self.heap[a].item, a);
        self.pos.insert(self.heap[b].item, b);
    }

    /// Debug/test aid: verifies heap order and position-map consistency.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        for i in 1..self.heap.len() {
            let parent = (i - 1) / 2;
            assert!(
                self.heap[parent].count <= self.heap[i].count,
                "heap order violated at {i}"
            );
        }
        assert_eq!(self.pos.len(), self.heap.len());
        for (i, slot) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[&slot.item], i, "stale position for {}", slot.item);
        }
    }
}

impl FrequencyEstimator for SpaceSavingHeap {
    /// MHE weighted update: O(log k).
    fn update(&mut self, item: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.stream_weight += weight;
        if let Some(&i) = self.pos.get(&item) {
            self.heap[i].count += weight;
            self.sift_down(i);
        } else if self.heap.len() < self.k {
            self.heap.push(Slot {
                item,
                count: weight,
                err: 0,
            });
            self.pos.insert(item, self.heap.len() - 1);
            self.sift_up(self.heap.len() - 1);
        } else {
            // Overwrite the minimum counter (Algorithm 2, lines 10-12).
            let evicted = self.heap[0].item;
            self.pos.remove(&evicted);
            let min = self.heap[0].count;
            self.heap[0] = Slot {
                item,
                count: min + weight,
                err: min,
            };
            self.pos.insert(item, 0);
            self.sift_down(0);
        }
    }

    /// SS estimate: the stored count for tracked items (an overestimate),
    /// the minimum counter for untracked items (Algorithm 2's Estimate).
    fn estimate(&self, item: u64) -> u64 {
        match self.pos.get(&item) {
            Some(&i) => self.heap[i].count,
            None => self.min_counter(),
        }
    }

    fn stream_weight(&self) -> u64 {
        self.stream_weight
    }
}

impl CounterSummary for SpaceSavingHeap {
    fn counters(&self) -> Vec<(u64, u64)> {
        self.heap.iter().map(|s| (s.item, s.count)).collect()
    }

    fn num_counters(&self) -> usize {
        self.heap.len()
    }

    fn max_counters(&self) -> usize {
        self.k
    }

    fn max_error(&self) -> u64 {
        self.min_counter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn exact_under_capacity() {
        let mut ss = SpaceSavingHeap::new(8);
        ss.update(1, 10);
        ss.update(2, 5);
        ss.update(1, 3);
        assert_eq!(ss.estimate(1), 13);
        assert_eq!(ss.estimate(2), 5);
        assert_eq!(ss.estimate(99), 0, "under capacity min is 0");
        ss.check_invariants();
    }

    #[test]
    fn eviction_inherits_min_plus_weight() {
        let mut ss = SpaceSavingHeap::new(2);
        ss.update(1, 10);
        ss.update(2, 4);
        ss.update(3, 5); // evicts item 2 (min=4): count = 9, err = 4
        assert_eq!(ss.estimate(3), 9);
        let (lb, ub) = ss.bounds(3);
        assert_eq!((lb, ub), (5, 9));
        assert_eq!(ss.estimate(2), ss.min_counter(), "untracked → min");
        ss.check_invariants();
    }

    #[test]
    fn counter_sum_equals_stream_weight() {
        // SS invariant: ΣC = N at all times once weights only add.
        let mut ss = SpaceSavingHeap::new(16);
        let mut x = 3u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ss.update((x >> 32) % 500, x % 50 + 1);
        }
        assert_eq!(ss.counter_sum(), ss.stream_weight());
        ss.check_invariants();
    }

    #[test]
    fn overestimates_within_min_counter() {
        let mut ss = SpaceSavingHeap::new(32);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut x = 17u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (x >> 33) % 300;
            let w = x % 20 + 1;
            ss.update(item, w);
            *truth.entry(item).or_insert(0) += w;
        }
        let err = ss.min_counter();
        for (&item, &f) in &truth {
            if ss.is_tracked(item) {
                let est = ss.estimate(item);
                assert!(est >= f, "SS must overestimate tracked item {item}");
                assert!(est - f <= err, "item {item}: est {est} > f {f} + min {err}");
            } else {
                assert!(f <= err, "untracked item {item} has f {f} > min {err}");
            }
        }
        ss.check_invariants();
    }

    #[test]
    fn unit_updates_match_algorithm2_by_hand() {
        // k=2, stream: a b c → c overwrites the min (a or b, both count 1)
        // and gets count 2.
        let mut ss = SpaceSavingHeap::new(2);
        ss.update_one(1);
        ss.update_one(2);
        ss.update_one(3);
        assert_eq!(ss.estimate(3), 2);
        assert_eq!(ss.counter_sum(), 3);
    }

    #[test]
    fn heavy_item_is_never_evicted() {
        let mut ss = SpaceSavingHeap::new(8);
        for i in 0..10_000u64 {
            ss.update(42, 100);
            ss.update(i % 1000 + 1000, 1);
        }
        let f = 10_000 * 100;
        let (lb, ub) = ss.bounds(42);
        assert!(lb <= f && f <= ub, "bounds [{lb},{ub}] miss {f}");
        assert!(ub - f <= ss.min_counter());
    }

    #[test]
    fn heap_property_after_many_updates() {
        let mut ss = SpaceSavingHeap::new(64);
        let mut x = 99u64;
        for _ in 0..100_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(1);
            ss.update((x >> 32) % 10_000, x % 100 + 1);
        }
        ss.check_invariants();
        assert_eq!(ss.num_counters(), 64);
    }

    #[test]
    fn zero_weight_noop() {
        let mut ss = SpaceSavingHeap::new(4);
        ss.update(1, 0);
        assert_eq!(ss.num_counters(), 0);
        assert_eq!(ss.stream_weight(), 0);
    }
}
