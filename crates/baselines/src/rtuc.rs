//! **RTUC** — Reduce-To-Unit-Case extensions (§1.3.4 / §1.3.5): process a
//! weighted update `(i, Δ)` as `Δ` unit updates.
//!
//! Θ(Δ) per update makes these unusable on real weighted streams (packet
//! sizes, bytes transferred, …) — that is the paper's opening argument —
//! but they are the *semantic reference points*: RBMC's estimates equal
//! RTUC-MG's, and MHE's equal RTUC-SS's (§1.4). The test suites use these
//! wrappers to validate the fast implementations against ground-truth
//! semantics on small streams.

use crate::misra_gries::MisraGries;
use crate::space_saving::SpaceSavingHeap;
use streamfreq_core::{CounterSummary, FrequencyEstimator};

/// RTUC-MG: Misra-Gries driven by unit expansion of weighted updates.
#[derive(Clone, Debug)]
pub struct RtucMg {
    inner: MisraGries,
}

impl RtucMg {
    /// Creates a summary with `k` counters.
    pub fn new(k: usize) -> Self {
        Self {
            inner: MisraGries::new(k),
        }
    }

    /// Number of unit-level decrement operations performed.
    pub fn num_decrement_ops(&self) -> u64 {
        self.inner.num_decrement_ops()
    }
}

impl FrequencyEstimator for RtucMg {
    fn update(&mut self, item: u64, weight: u64) {
        self.inner.update(item, weight);
    }

    fn estimate(&self, item: u64) -> u64 {
        self.inner.estimate(item)
    }

    fn stream_weight(&self) -> u64 {
        self.inner.stream_weight()
    }
}

impl CounterSummary for RtucMg {
    fn counters(&self) -> Vec<(u64, u64)> {
        self.inner.counters()
    }

    fn num_counters(&self) -> usize {
        self.inner.num_counters()
    }

    fn max_counters(&self) -> usize {
        self.inner.max_counters()
    }

    fn max_error(&self) -> u64 {
        self.inner.max_error()
    }
}

/// RTUC-SS: Space Saving driven by unit expansion of weighted updates.
#[derive(Clone, Debug)]
pub struct RtucSs {
    inner: SpaceSavingHeap,
}

impl RtucSs {
    /// Creates a summary with `k` counters.
    pub fn new(k: usize) -> Self {
        Self {
            inner: SpaceSavingHeap::new(k),
        }
    }

    /// The minimum counter value.
    pub fn min_counter(&self) -> u64 {
        self.inner.min_counter()
    }
}

impl FrequencyEstimator for RtucSs {
    fn update(&mut self, item: u64, weight: u64) {
        for _ in 0..weight {
            self.inner.update_one(item);
        }
    }

    fn estimate(&self, item: u64) -> u64 {
        self.inner.estimate(item)
    }

    fn stream_weight(&self) -> u64 {
        self.inner.stream_weight()
    }
}

impl CounterSummary for RtucSs {
    fn counters(&self) -> Vec<(u64, u64)> {
        self.inner.counters()
    }

    fn num_counters(&self) -> usize {
        self.inner.num_counters()
    }

    fn max_counters(&self) -> usize {
        self.inner.max_counters()
    }

    fn max_error(&self) -> u64 {
        self.inner.max_error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtuc_mg_equals_unit_mg() {
        let mut weighted = RtucMg::new(5);
        let mut unit = MisraGries::new(5);
        let updates = [(1u64, 4u64), (2, 2), (3, 7), (1, 1), (4, 3)];
        for &(i, w) in &updates {
            weighted.update(i, w);
            for _ in 0..w {
                unit.update_unit(i);
            }
        }
        for item in 1..=4 {
            assert_eq!(weighted.estimate(item), unit.estimate(item));
        }
    }

    #[test]
    fn rtuc_ss_counter_sum_is_stream_weight() {
        let mut ss = RtucSs::new(4);
        ss.update(1, 10);
        ss.update(2, 5);
        ss.update(3, 3);
        ss.update(4, 2);
        ss.update(5, 1); // eviction
        let sum: u64 = ss.counters().iter().map(|&(_, c)| c).sum();
        assert_eq!(sum, 21);
        assert_eq!(ss.stream_weight(), 21);
    }

    #[test]
    fn mhe_equals_rtuc_ss_on_unambiguous_streams() {
        // §1.4: MHE produces the same estimates as RTUC-SS. Eviction
        // tie-breaking can differ, so use a stream with distinct counter
        // values at every eviction point.
        let mut mhe = SpaceSavingHeap::new(3);
        let mut rtuc = RtucSs::new(3);
        let updates = [(1u64, 100u64), (2, 50), (3, 20), (4, 7), (5, 131)];
        for &(i, w) in &updates {
            mhe.update(i, w);
            rtuc.update(i, w);
        }
        for item in 1..=5 {
            assert_eq!(
                mhe.estimate(item),
                rtuc.estimate(item),
                "MHE/RTUC-SS diverged on {item}"
            );
        }
    }
}
