//! The Count-Min sketch (Cormode & Muthukrishnan, LATIN 2004) — the
//! representative of the *linear sketch* class of §1.3.
//!
//! Cormode & Hadjieleftheriou's survey found (and the paper's own initial
//! experiments confirmed) that counter-based algorithms beat sketches on
//! space, speed, and accuracy for insertion streams. This implementation
//! exists so the benchmark suite can re-confirm that claim
//! (`sketch_vs_counters` harness) rather than assert it.
//!
//! A Count-Min sketch is a `depth × width` grid of counters; each row hashes
//! the item to one cell and adds the weight. The estimate is the minimum
//! over rows: always an overestimate, with `ε = e/width` relative error at
//! confidence `1 − e^{−depth}`.

use streamfreq_core::hashing::Hash64;
use streamfreq_core::rng::split_mix64_mix;
use streamfreq_core::FrequencyEstimator;

/// Count-Min sketch with `depth` rows of `width` counters.
#[derive(Clone, Debug)]
pub struct CountMinSketch {
    rows: Vec<Vec<u64>>,
    row_seeds: Vec<u64>,
    width: usize,
    stream_weight: u64,
}

impl CountMinSketch {
    /// Creates a `depth × width` sketch seeded deterministically from
    /// `seed`.
    ///
    /// # Panics
    /// Panics if `depth` or `width` is zero.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(depth > 0, "depth must be positive");
        assert!(width > 0, "width must be positive");
        let row_seeds = (0..depth as u64)
            .map(|r| split_mix64_mix(seed ^ r.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        Self {
            rows: vec![vec![0; width]; depth],
            row_seeds,
            width,
            stream_weight: 0,
        }
    }

    /// Sizes the sketch for additive error `≤ eps·N` with failure
    /// probability `≤ delta` (standard `w = ⌈e/eps⌉`, `d = ⌈ln(1/delta)⌉`).
    ///
    /// # Panics
    /// Panics unless `0 < eps ≤ 1` and `0 < delta < 1`.
    pub fn with_error_bounds(eps: f64, delta: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "eps {eps} outside (0, 1]");
        assert!(delta > 0.0 && delta < 1.0, "delta {delta} outside (0, 1)");
        let width = (core::f64::consts::E / eps).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(depth, width, seed)
    }

    #[inline]
    fn cell(&self, row: usize, item: u64) -> usize {
        (split_mix64_mix(item.hash64() ^ self.row_seeds[row]) as usize) % self.width
    }

    /// Bytes of counter storage (8 bytes per cell).
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * self.width * 8
    }

    /// The sketch depth (number of rows).
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// The sketch width (counters per row).
    pub fn width(&self) -> usize {
        self.width
    }
}

impl FrequencyEstimator for CountMinSketch {
    fn update(&mut self, item: u64, weight: u64) {
        self.stream_weight += weight;
        for row in 0..self.rows.len() {
            let c = self.cell(row, item);
            self.rows[row][c] += weight;
        }
    }

    /// Estimate: the minimum cell over rows (never underestimates).
    fn estimate(&self, item: u64) -> u64 {
        (0..self.rows.len())
            .map(|row| self.rows[row][self.cell(row, item)])
            .min()
            .unwrap_or(0)
    }

    fn stream_weight(&self) -> u64 {
        self.stream_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn never_underestimates() {
        let mut cm = CountMinSketch::new(4, 64, 1);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut x = 9u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (x >> 33) % 500;
            let w = x % 9 + 1;
            cm.update(item, w);
            *truth.entry(item).or_insert(0) += w;
        }
        for (&item, &f) in &truth {
            assert!(cm.estimate(item) >= f, "CM underestimated {item}");
        }
    }

    #[test]
    fn error_within_theory_bound() {
        let eps = 0.01;
        let mut cm = CountMinSketch::with_error_bounds(eps, 0.01, 42);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut x = 77u64;
        for _ in 0..100_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(1);
            let item = (x >> 32) % 2_000;
            cm.update(item, 1);
            *truth.entry(item).or_insert(0) += 1;
        }
        let n = cm.stream_weight();
        let bound = (eps * n as f64) as u64;
        let mut violations = 0;
        for (&item, &f) in &truth {
            if cm.estimate(item) - f > bound {
                violations += 1;
            }
        }
        // With depth = ln(100) ≈ 5 rows, per-item failure prob ≤ 1%.
        assert!(
            violations <= truth.len() / 20,
            "{violations} of {} items exceeded the CM bound",
            truth.len()
        );
    }

    #[test]
    fn exact_for_isolated_items() {
        let mut cm = CountMinSketch::new(4, 1024, 3);
        cm.update(42, 1000);
        assert_eq!(cm.estimate(42), 1000);
        // an item never updated can still collide, but with 1024 cells and
        // one occupied cell per row, 4 independent rows make it astronomically
        // unlikely all 4 collide.
        assert_eq!(cm.estimate(43), 0);
    }

    #[test]
    fn sizing_formula() {
        let cm = CountMinSketch::with_error_bounds(0.001, 0.01, 0);
        assert_eq!(cm.width(), 2719); // ceil(e/0.001)
        assert_eq!(cm.depth(), 5); // ceil(ln 100)
        assert_eq!(cm.memory_bytes(), 5 * 2719 * 8);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        CountMinSketch::new(1, 0, 0);
    }
}
