//! Exact frequency counting — ground truth for every error measurement,
//! and the "trivial solution" of §4.1 whose memory the sketches undercut
//! by ~70× at `k = 24 576`.

use std::collections::HashMap;

use streamfreq_core::{CounterSummary, FrequencyEstimator};

/// Exact per-item weighted counts in a hash map.
#[derive(Clone, Debug, Default)]
pub struct ExactCounter {
    counts: HashMap<u64, u64>,
    stream_weight: u64,
}

impl ExactCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct items seen.
    pub fn num_distinct(&self) -> usize {
        self.counts.len()
    }

    /// The exact frequencies, sorted descending — the `f₁ ≥ f₂ ≥ …` vector
    /// of the paper's tail-bound analyses.
    pub fn sorted_frequencies(&self) -> Vec<u64> {
        let mut f: Vec<u64> = self.counts.values().copied().collect();
        f.sort_unstable_by(|a, b| b.cmp(a));
        f
    }

    /// The exact top-`j` items by frequency.
    pub fn top_j(&self, j: usize) -> Vec<(u64, u64)> {
        let mut pairs: Vec<(u64, u64)> = self.counts.iter().map(|(&i, &c)| (i, c)).collect();
        pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(j);
        pairs
    }

    /// Iterates over all exact `(item, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&i, &c)| (i, c))
    }

    /// Approximate heap footprint of the map (for the §4.1 space
    /// comparison against the trivial solution).
    pub fn memory_bytes(&self) -> usize {
        // 16 bytes of payload per entry plus ~1 byte of control per slot at
        // hashbrown's 7/8 max load; capacity may exceed len.
        self.counts.capacity() * 17
    }

    /// Maximum estimation error any sketch can have against this truth on
    /// the given items: used by the error harness.
    pub fn max_abs_error<F: Fn(u64) -> u64>(&self, estimate: F) -> u64 {
        self.counts
            .iter()
            .map(|(&item, &f)| estimate(item).abs_diff(f))
            .max()
            .unwrap_or(0)
    }
}

impl FrequencyEstimator for ExactCounter {
    fn update(&mut self, item: u64, weight: u64) {
        *self.counts.entry(item).or_insert(0) += weight;
        self.stream_weight += weight;
    }

    fn estimate(&self, item: u64) -> u64 {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    fn stream_weight(&self) -> u64 {
        self.stream_weight
    }
}

impl CounterSummary for ExactCounter {
    fn counters(&self) -> Vec<(u64, u64)> {
        self.iter().collect()
    }

    fn num_counters(&self) -> usize {
        self.counts.len()
    }

    fn max_counters(&self) -> usize {
        usize::MAX
    }

    fn max_error(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact() {
        let mut e = ExactCounter::new();
        e.update(1, 10);
        e.update(2, 5);
        e.update(1, 3);
        assert_eq!(e.estimate(1), 13);
        assert_eq!(e.estimate(2), 5);
        assert_eq!(e.estimate(3), 0);
        assert_eq!(e.stream_weight(), 18);
        assert_eq!(e.num_distinct(), 2);
    }

    #[test]
    fn sorted_frequencies_descend() {
        let mut e = ExactCounter::new();
        for (i, w) in [(1u64, 5u64), (2, 50), (3, 20)] {
            e.update(i, w);
        }
        assert_eq!(e.sorted_frequencies(), vec![50, 20, 5]);
        assert_eq!(e.top_j(2), vec![(2, 50), (3, 20)]);
    }

    #[test]
    fn max_abs_error_of_perfect_estimator_is_zero() {
        let mut e = ExactCounter::new();
        for i in 0..100u64 {
            e.update(i, i + 1);
        }
        let snapshot = e.clone();
        assert_eq!(e.max_abs_error(|item| snapshot.estimate(item)), 0);
        assert_eq!(e.max_abs_error(|_| 0), 100);
    }
}
