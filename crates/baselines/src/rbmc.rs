//! **RBMC** — the Reduce-By-Min-Counter extension of Misra-Gries to
//! weighted updates (Berinde, Indyk, Cormode & Strauss, §1.3.4 of the
//! paper).
//!
//! On an update to an untracked item with all counters assigned, RBMC
//! decrements every counter by `min(Δ, c_min)` and inserts the new item
//! with the excess `Δ − c_min` (if positive). Its estimates are *identical*
//! to running plain Misra-Gries on the unit-expanded stream (RTUC-MG), so
//! it inherits Lemmas 1–2. Its weakness is runtime: decrement sweeps can
//! fire on essentially **every** update (§1.3.4 exhibits such a stream; the
//! `adversarial` workload in `streamfreq-workloads` generates it), which is
//! what Figures 1 and 3 measure.
//!
//! ## Implementation
//!
//! The sweep loop and storage reuse the optimized linear-probing table via
//! [`PurgePolicy::GlobalMin`]: inserting the update first and then
//! decrementing all `k+1` counters by the *global* minimum reproduces both
//! RBMC cases exactly — if `Δ ≤ c_min` the new item itself is the minimum
//! and is swept out (case 1), otherwise the old minimum dies and the new
//! item keeps `Δ − c_min` (case 2). Sharing the table keeps the
//! equal-space comparisons of Figure 1 exact (the paper likewise gives
//! RBMC its own optimized-table implementation). Estimates are reported
//! MG-style — the stored counter, `0` if untracked — as in Berinde et al.

use streamfreq_core::{CounterSummary, FreqSketch, FrequencyEstimator, PurgePolicy};

/// RBMC summary: weighted Misra-Gries with reduce-by-global-min sweeps.
#[derive(Clone, Debug)]
pub struct Rbmc {
    inner: FreqSketch,
}

impl Rbmc {
    /// Creates an RBMC summary with `k` counters.
    ///
    /// # Panics
    /// Panics if `k` is zero or needs a table beyond 2³¹ slots.
    pub fn new(k: usize) -> Self {
        Self {
            // Preallocated table: the baseline RBMC of the paper's
            // experiments owns a fixed k-counter table, and equal-space
            // comparisons account for the full allocation.
            inner: FreqSketch::builder(k)
                .policy(PurgePolicy::GlobalMin)
                .grow_from_small(false)
                .build()
                .expect("invalid k"),
        }
    }

    /// Number of decrement sweeps performed (each costs Θ(k)).
    pub fn num_sweeps(&self) -> u64 {
        self.inner.num_purges()
    }

    /// Total decrement applied to any surviving counter — the exact
    /// maximum estimation error of the summary.
    pub fn max_error(&self) -> u64 {
        self.inner.maximum_error()
    }

    /// Bytes of heap memory held by the counter table (same table as the
    /// paper's optimized algorithms, so equal-space comparisons are exact).
    pub fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

impl FrequencyEstimator for Rbmc {
    fn update(&mut self, item: u64, weight: u64) {
        self.inner.update(item, weight);
    }

    /// MG-style estimate: the stored counter, `0` if untracked (always an
    /// underestimate, per Berinde et al.).
    fn estimate(&self, item: u64) -> u64 {
        self.inner.lower_bound(item)
    }

    fn stream_weight(&self) -> u64 {
        self.inner.stream_weight()
    }
}

impl CounterSummary for Rbmc {
    fn counters(&self) -> Vec<(u64, u64)> {
        self.inner.counters().collect()
    }

    fn num_counters(&self) -> usize {
        self.inner.num_counters()
    }

    fn max_counters(&self) -> usize {
        self.inner.max_counters()
    }

    fn max_error(&self) -> u64 {
        Rbmc::max_error(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtuc::RtucMg;
    use std::collections::HashMap;

    #[test]
    fn exact_under_capacity() {
        let mut r = Rbmc::new(8);
        r.update(1, 100);
        r.update(2, 50);
        assert_eq!(r.estimate(1), 100);
        assert_eq!(r.estimate(2), 50);
        assert_eq!(r.num_sweeps(), 0);
    }

    #[test]
    fn case1_small_weight_is_absorbed() {
        // Table full with large counters; a unit update to a new item
        // sweeps everyone down by 1 and the new item vanishes.
        let mut r = Rbmc::new(4);
        for item in 0..4u64 {
            r.update(item, 100);
        }
        r.update(99, 1);
        assert_eq!(r.estimate(99), 0, "small new item must not survive");
        assert_eq!(r.estimate(0), 99, "counters reduced by Δ = 1");
        assert_eq!(r.num_sweeps(), 1);
    }

    #[test]
    fn case2_large_weight_replaces_minimum() {
        let mut r = Rbmc::new(4);
        r.update(0, 100);
        r.update(1, 100);
        r.update(2, 100);
        r.update(3, 10); // the minimum
        r.update(99, 50); // > c_min = 10: everyone -10, item 99 gets 40
        assert_eq!(r.estimate(3), 0);
        assert_eq!(r.estimate(99), 40);
        assert_eq!(r.estimate(0), 90);
    }

    #[test]
    fn estimates_match_rtuc_mg_exactly() {
        // RBMC is isomorphic to running MG on the unit-expanded stream
        // (§1.3.4). Verify estimate-for-estimate equality on a random
        // small-weight stream.
        let mut rbmc = Rbmc::new(6);
        let mut rtuc = RtucMg::new(6);
        let mut x = 42u64;
        for _ in 0..3_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (x >> 33) % 40;
            let w = x % 5 + 1;
            rbmc.update(item, w);
            rtuc.update(item, w);
        }
        for item in 0..40u64 {
            assert_eq!(
                rbmc.estimate(item),
                rtuc.estimate(item),
                "RBMC/RTUC-MG diverged on item {item}"
            );
        }
    }

    #[test]
    fn adversarial_stream_sweeps_every_update() {
        // §1.3.4's lower-bound stream: k huge counters, then unit updates
        // to fresh items — every unit update forces a Θ(k) sweep.
        let k = 16;
        let m = 500u64;
        let mut r = Rbmc::new(k);
        for item in 0..k as u64 {
            r.update(item, m);
        }
        for item in 0..m {
            r.update(1000 + item, 1);
        }
        assert_eq!(r.num_sweeps(), m, "every unit update must trigger a sweep");
    }

    #[test]
    fn lemma1_bound_holds() {
        let mut r = Rbmc::new(9);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut x = 3u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(1);
            let item = (x >> 32) % 150;
            let w = x % 30 + 1;
            r.update(item, w);
            *truth.entry(item).or_insert(0) += w;
        }
        let bound = r.stream_weight() / 10;
        for (&item, &f) in &truth {
            let est = r.estimate(item);
            assert!(est <= f);
            assert!(f - est <= bound, "Lemma 1 violated for {item}");
        }
    }
}
