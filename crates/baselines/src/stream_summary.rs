//! The Stream Summary data structure — **SSL** in Cormode &
//! Hadjieleftheriou's survey nomenclature (§1.3.3 of the paper; Metwally,
//! Agrawal & El Abbadi, ICDT 2005).
//!
//! Space Saving for *unit* updates in worst-case O(1) per update: counters
//! with equal counts are grouped into *buckets*, buckets form a doubly
//! linked list in ascending count order, and an increment moves a counter
//! to the neighbouring bucket. The paper's §1.1 recounts the conventional
//! wisdom this structure created — faster than the heap implementation on
//! unit streams but "significantly more space intensive", and with no
//! natural extension to weighted updates (§1.3.5). We implement it to
//! reproduce that comparison honestly.
//!
//! The implementation uses index-linked arenas (no `unsafe`, no pointer
//! chasing through `Rc<RefCell<…>>`): counters and buckets live in `Vec`s
//! and link by index, which also keeps the memory accounting transparent
//! ([`StreamSummary::memory_bytes`]).

use std::collections::HashMap;

use streamfreq_core::{CounterSummary, FrequencyEstimator};

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Counter {
    item: u64,
    /// Count of the counter this item overwrote (Space Saving's ε).
    err: u64,
    bucket: usize,
    prev: usize,
    next: usize,
}

#[derive(Clone, Debug)]
struct Bucket {
    value: u64,
    /// Head of this bucket's doubly linked counter list.
    head: usize,
    prev: usize,
    next: usize,
}

/// Space Saving over the Stream Summary structure: O(1) worst-case unit
/// updates, `k` counters.
#[derive(Clone, Debug)]
pub struct StreamSummary {
    counters: Vec<Counter>,
    buckets: Vec<Bucket>,
    bucket_free: Vec<usize>,
    /// Bucket with the smallest count (list head); `NIL` when empty.
    min_bucket: usize,
    map: HashMap<u64, usize>,
    k: usize,
    stream_weight: u64,
}

impl StreamSummary {
    /// Creates a summary with `k` counters.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            counters: Vec::with_capacity(k),
            buckets: Vec::new(),
            bucket_free: Vec::new(),
            min_bucket: NIL,
            map: HashMap::with_capacity(k),
            k,
            stream_weight: 0,
        }
    }

    /// The minimum counter value (0 while under capacity).
    pub fn min_counter(&self) -> u64 {
        if self.counters.len() < self.k || self.min_bucket == NIL {
            0
        } else {
            self.buckets[self.min_bucket].value
        }
    }

    /// Processes a unit update in O(1).
    pub fn update_one(&mut self, item: u64) {
        self.stream_weight += 1;
        if let Some(&c) = self.map.get(&item) {
            self.increment(c);
        } else if self.counters.len() < self.k {
            let c = self.counters.len();
            self.counters.push(Counter {
                item,
                err: 0,
                bucket: NIL,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(item, c);
            self.attach_to_value(c, 1, self.min_bucket_candidate_for_one());
            // a fresh counter starts at count 1, the global minimum, so the
            // target bucket is at (or becomes) the list head.
        } else {
            // Evict from the minimum bucket (Algorithm 2, lines 10-12).
            let b = self.min_bucket;
            let c = self.buckets[b].head;
            let min = self.buckets[b].value;
            let old_item = self.counters[c].item;
            self.map.remove(&old_item);
            self.counters[c].item = item;
            self.counters[c].err = min;
            self.map.insert(item, c);
            self.increment(c);
        }
    }

    /// Where a count-1 counter should attach: the head bucket if its value
    /// is 1, otherwise a new head bucket.
    fn min_bucket_candidate_for_one(&self) -> usize {
        if self.min_bucket != NIL && self.buckets[self.min_bucket].value == 1 {
            self.min_bucket
        } else {
            NIL
        }
    }

    /// Moves counter `c` from its bucket (value v) to value v+1, reusing
    /// the successor bucket when its value matches, creating one otherwise,
    /// and freeing the old bucket if it empties. O(1).
    fn increment(&mut self, c: usize) {
        let b = self.counters[c].bucket;
        let v = self.buckets[b].value;
        let next = self.buckets[b].next;
        self.detach_counter(c);
        let target = if next != NIL && self.buckets[next].value == v + 1 {
            next
        } else {
            NIL
        };
        // If the old bucket is now empty it must be removed *before*
        // inserting the new one to keep the list strictly ascending.
        let insert_after = if self.buckets[b].head == NIL {
            let prev = self.buckets[b].prev;
            self.remove_bucket(b);
            prev
        } else {
            b
        };
        if target != NIL {
            self.push_counter(c, target);
        } else {
            let nb = self.new_bucket_after(insert_after, v + 1);
            self.push_counter(c, nb);
        }
    }

    /// Attaches counter `c` at count `value`, into `bucket` if given, else
    /// into a fresh bucket at the list head (only used for count 1).
    fn attach_to_value(&mut self, c: usize, value: u64, bucket: usize) {
        if bucket != NIL {
            self.push_counter(c, bucket);
        } else {
            let nb = self.new_bucket_after(NIL, value);
            self.push_counter(c, nb);
        }
    }

    /// Unlinks counter `c` from its bucket's counter list (bucket link is
    /// left dangling; caller re-attaches immediately).
    fn detach_counter(&mut self, c: usize) {
        let b = self.counters[c].bucket;
        let prev = self.counters[c].prev;
        let next = self.counters[c].next;
        if prev != NIL {
            self.counters[prev].next = next;
        } else {
            self.buckets[b].head = next;
        }
        if next != NIL {
            self.counters[next].prev = prev;
        }
        self.counters[c].prev = NIL;
        self.counters[c].next = NIL;
    }

    /// Pushes counter `c` at the head of `bucket`'s counter list.
    fn push_counter(&mut self, c: usize, bucket: usize) {
        let head = self.buckets[bucket].head;
        self.counters[c].bucket = bucket;
        self.counters[c].prev = NIL;
        self.counters[c].next = head;
        if head != NIL {
            self.counters[head].prev = c;
        }
        self.buckets[bucket].head = c;
    }

    /// Allocates a bucket with `value` directly after bucket `after`
    /// (`NIL` = at the list head). Returns its index.
    fn new_bucket_after(&mut self, after: usize, value: u64) -> usize {
        let idx = match self.bucket_free.pop() {
            Some(i) => i,
            None => {
                self.buckets.push(Bucket {
                    value: 0,
                    head: NIL,
                    prev: NIL,
                    next: NIL,
                });
                self.buckets.len() - 1
            }
        };
        let next = if after == NIL {
            self.min_bucket
        } else {
            self.buckets[after].next
        };
        self.buckets[idx] = Bucket {
            value,
            head: NIL,
            prev: after,
            next,
        };
        if after == NIL {
            self.min_bucket = idx;
        } else {
            self.buckets[after].next = idx;
        }
        if next != NIL {
            self.buckets[next].prev = idx;
        }
        idx
    }

    /// Unlinks an empty bucket and returns it to the free list.
    fn remove_bucket(&mut self, b: usize) {
        debug_assert_eq!(self.buckets[b].head, NIL, "removing non-empty bucket");
        let prev = self.buckets[b].prev;
        let next = self.buckets[b].next;
        if prev != NIL {
            self.buckets[prev].next = next;
        } else {
            self.min_bucket = next;
        }
        if next != NIL {
            self.buckets[next].prev = prev;
        }
        self.bucket_free.push(b);
    }

    /// Approximate heap footprint: counter arena + bucket arena + map.
    /// Counters cost 40 bytes each and buckets 32, before map overhead —
    /// the "more than double the space" of the paper's §1.3.3 discussion
    /// relative to the 18-byte slots of the optimized table.
    pub fn memory_bytes(&self) -> usize {
        self.counters.capacity() * std::mem::size_of::<Counter>()
            + self.buckets.capacity() * std::mem::size_of::<Bucket>()
            + self.map.capacity() * (std::mem::size_of::<(u64, usize)>() + 8)
    }

    /// Debug/test aid: verifies bucket ordering, list integrity, and map
    /// consistency.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut seen_counters = 0usize;
        let mut b = self.min_bucket;
        let mut last_value = 0u64;
        let mut prev_bucket = NIL;
        while b != NIL {
            let bucket = &self.buckets[b];
            assert!(
                bucket.value > last_value || prev_bucket == NIL,
                "bucket values must strictly ascend"
            );
            assert_eq!(bucket.prev, prev_bucket, "bucket back-link broken");
            assert_ne!(bucket.head, NIL, "live bucket may not be empty");
            let mut c = bucket.head;
            let mut prev_counter = NIL;
            while c != NIL {
                let counter = &self.counters[c];
                assert_eq!(counter.bucket, b, "counter bucket link broken");
                assert_eq!(counter.prev, prev_counter, "counter back-link broken");
                assert_eq!(
                    self.map.get(&counter.item),
                    Some(&c),
                    "map out of sync for item {}",
                    counter.item
                );
                seen_counters += 1;
                prev_counter = c;
                c = counter.next;
            }
            last_value = bucket.value;
            prev_bucket = b;
            b = bucket.next;
        }
        assert_eq!(seen_counters, self.map.len(), "orphaned counters");
    }

    fn count_of(&self, c: usize) -> u64 {
        self.buckets[self.counters[c].bucket].value
    }
}

impl FrequencyEstimator for StreamSummary {
    /// Weighted update by reduction to unit case — Θ(weight). The paper's
    /// point (§1.3.5) is precisely that Stream Summary has no natural
    /// weighted update; this reduction exists so experiments can include
    /// SSL on weighted streams at its honest cost.
    fn update(&mut self, item: u64, weight: u64) {
        for _ in 0..weight {
            self.update_one(item);
        }
    }

    fn estimate(&self, item: u64) -> u64 {
        match self.map.get(&item) {
            Some(&c) => self.count_of(c),
            None => self.min_counter(),
        }
    }

    fn stream_weight(&self) -> u64 {
        self.stream_weight
    }
}

impl CounterSummary for StreamSummary {
    fn counters(&self) -> Vec<(u64, u64)> {
        self.map
            .iter()
            .map(|(&item, &c)| (item, self.count_of(c)))
            .collect()
    }

    fn num_counters(&self) -> usize {
        self.map.len()
    }

    fn max_counters(&self) -> usize {
        self.k
    }

    fn max_error(&self) -> u64 {
        self.min_counter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space_saving::SpaceSavingHeap;
    use std::collections::HashMap;

    #[test]
    fn exact_under_capacity() {
        let mut ss = StreamSummary::new(4);
        for item in [1, 1, 2, 1, 3] {
            ss.update_one(item);
        }
        assert_eq!(ss.estimate(1), 3);
        assert_eq!(ss.estimate(2), 1);
        assert_eq!(ss.estimate(3), 1);
        assert_eq!(ss.estimate(4), 0);
        ss.check_invariants();
    }

    #[test]
    fn eviction_from_min_bucket() {
        let mut ss = StreamSummary::new(2);
        ss.update_one(1);
        ss.update_one(1);
        ss.update_one(2);
        ss.update_one(3); // evicts 2 (count 1) → count 2, err 1
        assert_eq!(ss.estimate(3), 2);
        assert!(!ss.map.contains_key(&2));
        ss.check_invariants();
    }

    #[test]
    fn bucket_merging_groups_equal_counts() {
        let mut ss = StreamSummary::new(8);
        for item in 0..8u64 {
            ss.update_one(item);
        }
        // All 8 counters share one bucket of value 1.
        let live_buckets = {
            let mut n = 0;
            let mut b = ss.min_bucket;
            while b != NIL {
                n += 1;
                b = ss.buckets[b].next;
            }
            n
        };
        assert_eq!(live_buckets, 1);
        ss.check_invariants();
    }

    #[test]
    fn counter_sum_equals_stream_length() {
        let mut ss = StreamSummary::new(10);
        let mut x = 5u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            ss.update_one((x >> 33) % 100);
        }
        let sum: u64 = ss.counters().iter().map(|&(_, c)| c).sum();
        assert_eq!(sum, 20_000);
        ss.check_invariants();
    }

    #[test]
    fn agrees_with_heap_space_saving_on_bounds() {
        // SSL and SSH implement the same algorithm; on a stream without
        // eviction ties their estimates agree exactly. With ties the evicted
        // identity may differ, so compare the error bound instead.
        let mut ssl = StreamSummary::new(16);
        let mut ssh = SpaceSavingHeap::new(16);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut x = 11u64;
        for _ in 0..30_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(1);
            let item = (x >> 32) % 200;
            ssl.update_one(item);
            ssh.update_one(item);
            *truth.entry(item).or_insert(0) += 1;
        }
        assert_eq!(ssl.min_counter(), ssh.min_counter());
        let err = ssl.min_counter();
        for (&item, &f) in &truth {
            for est in [ssl.estimate(item), ssh.estimate(item)] {
                assert!(est >= f.min(est));
                assert!(est <= f + err, "item {item}: {est} > {f} + {err}");
            }
        }
        ssl.check_invariants();
    }

    #[test]
    fn heavy_hitters_survive() {
        let mut ss = StreamSummary::new(8);
        for i in 0..5_000u64 {
            ss.update_one(7);
            ss.update_one(7);
            ss.update_one(i + 100);
        }
        let f = 10_000u64;
        let est = ss.estimate(7);
        assert!(est >= f, "heavy item underestimated: {est} < {f}");
        assert!(est - f <= ss.min_counter());
        ss.check_invariants();
    }

    #[test]
    fn bucket_arena_is_recycled() {
        let mut ss = StreamSummary::new(4);
        for round in 0..1000u64 {
            for item in 0..4 {
                ss.update_one(round * 4 + item);
            }
        }
        // Counts stay small so live buckets stay few; the arena must not
        // grow linearly with the stream.
        assert!(
            ss.buckets.len() <= 16,
            "bucket arena leaked: {} buckets",
            ss.buckets.len()
        );
        ss.check_invariants();
    }

    #[test]
    fn weighted_update_via_rtuc_matches_units() {
        let mut a = StreamSummary::new(4);
        let mut b = StreamSummary::new(4);
        a.update(1, 5);
        a.update(2, 3);
        for _ in 0..5 {
            b.update_one(1);
        }
        for _ in 0..3 {
            b.update_one(2);
        }
        assert_eq!(a.estimate(1), b.estimate(1));
        assert_eq!(a.estimate(2), b.estimate(2));
    }
}
