//! Criterion counterpart of Figure 1: per-update throughput of the four
//! weighted-stream algorithms on the synthetic packet trace, at a small
//! and a large counter budget — plus the ingestion-pipeline comparison
//! (scalar vs batch vs sharded) on Zipf and adversarial workloads.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use streamfreq_baselines::{Rbmc, SpaceSavingHeap};
use streamfreq_core::{FreqSketch, FrequencyEstimator, PurgePolicy, ShardedSketch};
use streamfreq_workloads::{
    heavy_light_interleave, materialize_zipf, CaidaConfig, SyntheticCaida, WeightedUpdate,
};

fn trace(updates: usize) -> Vec<WeightedUpdate> {
    SyntheticCaida::materialize(&CaidaConfig::scaled(updates))
}

fn bench_ingest_pipeline(c: &mut Criterion) {
    let k = 24_576usize;
    let updates = 1_000_000;
    let workloads: [(&str, Vec<WeightedUpdate>); 2] = [
        ("zipf", materialize_zipf(updates, 1 << 26, 1.05, 1_500, 42)),
        (
            "adversarial",
            heavy_light_interleave(k, updates / 2, 1_000_000),
        ),
    ];
    let mut group = c.benchmark_group("fig1_ingest_pipeline");
    group.sample_size(10);
    for (name, stream) in &workloads {
        group.throughput(Throughput::Elements(stream.len() as u64));
        group.bench_with_input(BenchmarkId::new("scalar", name), stream, |b, stream| {
            b.iter(|| {
                let mut s = FreqSketch::builder(k)
                    .grow_from_small(false)
                    .build()
                    .unwrap();
                for &(item, w) in stream.iter() {
                    s.update(item, w);
                }
                s.num_purges()
            })
        });
        group.bench_with_input(BenchmarkId::new("batch", name), stream, |b, stream| {
            b.iter(|| {
                let mut s = FreqSketch::builder(k)
                    .grow_from_small(false)
                    .build()
                    .unwrap();
                s.update_batch(stream);
                s.num_purges()
            })
        });
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(&format!("sharded8x{threads}"), name),
                stream,
                |b, stream| {
                    b.iter(|| {
                        // k/8 counters per shard: every mode manages the
                        // same total counter state.
                        let mut bank = ShardedSketch::builder(8, k / 8)
                            .grow_from_small(false)
                            .build()
                            .unwrap();
                        bank.ingest_parallel(stream, threads);
                        bank.num_purges()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_updates(c: &mut Criterion) {
    let stream = trace(1_000_000);
    let mut group = c.benchmark_group("fig1_update_throughput");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);

    for &k in &[1_536usize, 24_576] {
        group.bench_with_input(BenchmarkId::new("SMED", k), &k, |b, &k| {
            b.iter(|| {
                let mut s = FreqSketch::builder(k)
                    .policy(PurgePolicy::smed())
                    .grow_from_small(false)
                    .build()
                    .unwrap();
                for &(item, w) in &stream {
                    s.update(item, w);
                }
                s.num_purges()
            })
        });
        group.bench_with_input(BenchmarkId::new("SMIN", k), &k, |b, &k| {
            b.iter(|| {
                let mut s = FreqSketch::builder(k)
                    .policy(PurgePolicy::smin())
                    .grow_from_small(false)
                    .build()
                    .unwrap();
                for &(item, w) in &stream {
                    s.update(item, w);
                }
                s.num_purges()
            })
        });
        group.bench_with_input(BenchmarkId::new("RBMC", k), &k, |b, &k| {
            b.iter(|| {
                let mut s = Rbmc::new(k);
                for &(item, w) in &stream {
                    s.update(item, w);
                }
                s.num_sweeps()
            })
        });
        group.bench_with_input(BenchmarkId::new("MHE", k), &k, |b, &k| {
            b.iter(|| {
                let mut s = SpaceSavingHeap::new(k);
                for &(item, w) in &stream {
                    s.update(item, w);
                }
                s.min_counter()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates, bench_ingest_pipeline);
criterion_main!(benches);
