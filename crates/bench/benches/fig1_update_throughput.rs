//! Criterion counterpart of Figure 1: per-update throughput of the four
//! weighted-stream algorithms on the synthetic packet trace, at a small
//! and a large counter budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use streamfreq_baselines::{Rbmc, SpaceSavingHeap};
use streamfreq_core::{FreqSketch, FrequencyEstimator, PurgePolicy};
use streamfreq_workloads::{CaidaConfig, SyntheticCaida, WeightedUpdate};

fn trace(updates: usize) -> Vec<WeightedUpdate> {
    SyntheticCaida::materialize(&CaidaConfig::scaled(updates))
}

fn bench_updates(c: &mut Criterion) {
    let stream = trace(1_000_000);
    let mut group = c.benchmark_group("fig1_update_throughput");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);

    for &k in &[1_536usize, 24_576] {
        group.bench_with_input(BenchmarkId::new("SMED", k), &k, |b, &k| {
            b.iter(|| {
                let mut s = FreqSketch::builder(k)
                    .policy(PurgePolicy::smed())
                    .grow_from_small(false)
                    .build()
                    .unwrap();
                for &(item, w) in &stream {
                    s.update(item, w);
                }
                s.num_purges()
            })
        });
        group.bench_with_input(BenchmarkId::new("SMIN", k), &k, |b, &k| {
            b.iter(|| {
                let mut s = FreqSketch::builder(k)
                    .policy(PurgePolicy::smin())
                    .grow_from_small(false)
                    .build()
                    .unwrap();
                for &(item, w) in &stream {
                    s.update(item, w);
                }
                s.num_purges()
            })
        });
        group.bench_with_input(BenchmarkId::new("RBMC", k), &k, |b, &k| {
            b.iter(|| {
                let mut s = Rbmc::new(k);
                for &(item, w) in &stream {
                    s.update(item, w);
                }
                s.num_sweeps()
            })
        });
        group.bench_with_input(BenchmarkId::new("MHE", k), &k, |b, &k| {
            b.iter(|| {
                let mut s = SpaceSavingHeap::new(k);
                for &(item, w) in &stream {
                    s.update(item, w);
                }
                s.min_counter()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
