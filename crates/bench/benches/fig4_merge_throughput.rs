//! Criterion counterpart of Figure 4: time to merge one pair of filled
//! SMED sketches, ours vs the two Agarwal et al. implementations.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use streamfreq_baselines::{ach_merge_quickselect, ach_merge_sort};
use streamfreq_core::{FreqSketch, PurgePolicy};
use streamfreq_workloads::{fill_stream, MergeWorkloadConfig};

fn filled(k: usize, index: u64) -> FreqSketch {
    let cfg = MergeWorkloadConfig {
        updates_per_sketch: 100_000,
        ..MergeWorkloadConfig::default()
    };
    let mut s = FreqSketch::builder(k)
        .policy(PurgePolicy::smed())
        .grow_from_small(false)
        .seed(77 + index)
        .build()
        .unwrap();
    for (item, w) in fill_stream(&cfg, index) {
        s.update(item, w);
    }
    s
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_merge");
    group.sample_size(20);
    for &k in &[4_096usize, 65_536] {
        let a = filled(k, 0);
        let b = filled(k, 1);
        let ca: Vec<(u64, u64)> = a.counters().collect();
        let cb: Vec<(u64, u64)> = b.counters().collect();

        group.bench_with_input(BenchmarkId::new("ours_alg5", k), &k, |bench, _| {
            bench.iter(|| {
                let mut dst = a.clone();
                dst.merge(&b);
                dst.num_counters()
            })
        });
        group.bench_with_input(BenchmarkId::new("hoa61_quickselect", k), &k, |bench, &k| {
            bench.iter(|| ach_merge_quickselect(&ca, &cb, k).num_counters())
        });
        group.bench_with_input(BenchmarkId::new("ach13_sort", k), &k, |bench, &k| {
            bench.iter(|| ach_merge_sort(&ca, &cb, k).num_counters())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
