//! Micro-benchmarks of the substrates: table operations, selection, purge,
//! hashing, and the Zipf sampler. These quantify the §2.3.3 design choices
//! (linear probing + shift deletion, quickselect on samples).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use streamfreq_core::hashing::Hash64;
use streamfreq_core::rng::Xoshiro256StarStar;
use streamfreq_core::select::select_nth_smallest;
use streamfreq_core::table::LpTable;
use streamfreq_workloads::Zipf;

fn bench_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_table");
    let lg = 15u32; // 32k slots, 24k counters at 3/4
    let cap = (1usize << lg) * 3 / 4;

    group.throughput(Throughput::Elements(cap as u64));
    group.bench_function("fill_to_three_quarters", |b| {
        b.iter(|| {
            let mut t = LpTable::with_lg_len(lg);
            for i in 0..cap as u64 {
                t.adjust_or_insert(i, 1);
            }
            t.num_active()
        })
    });

    let mut full = LpTable::with_lg_len(lg);
    for i in 0..cap as u64 {
        full.adjust_or_insert(i, (i % 1000 + 1) as i64);
    }
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("lookup_hit", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for i in 0..10_000u64 {
                acc += full.get(&(i * 7 % cap as u64)).unwrap_or(0);
            }
            acc
        })
    });
    group.bench_function("lookup_miss", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for i in 0..10_000u64 {
                acc += full.get(&(cap as u64 + i)).unwrap_or(0);
            }
            acc
        })
    });

    group.throughput(Throughput::Elements(cap as u64));
    group.bench_function("purge_sweep", |b| {
        b.iter(|| {
            let mut t = full.clone();
            t.adjust_all(-500);
            t.retain_positive()
        })
    });
    group.finish();
}

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[1_024usize, 32_768] {
        let data: Vec<i64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("quickselect_median", n), &n, |b, &n| {
            b.iter(|| {
                let mut work = data.clone();
                select_nth_smallest(&mut work, n / 2)
            })
        });
        group.bench_with_input(BenchmarkId::new("full_sort_median", n), &n, |b, &n| {
            b.iter(|| {
                let mut work = data.clone();
                work.sort_unstable();
                work[n / 2]
            })
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    group.throughput(Throughput::Elements(1024));
    let lg = 15u32;
    let cap = (1usize << lg) * 3 / 4;
    let mut table = LpTable::with_lg_len(lg);
    for i in 0..cap as u64 {
        table.adjust_or_insert(i, (i + 1) as i64);
    }
    group.bench_function("sample_1024_counters", |b| {
        let mut rng = Xoshiro256StarStar::from_seed(1);
        let mut out = Vec::new();
        b.iter(|| {
            table.sample_values(&mut rng, 1024, &mut out);
            out.len()
        })
    });

    group.throughput(Throughput::Elements(100_000));
    group.bench_function("zipf_sample_2pow32", |b| {
        let z = Zipf::new(1 << 32, 1.05);
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(z.sample(&mut rng));
            }
            acc
        })
    });

    group.throughput(Throughput::Elements(100_000));
    group.bench_function("hash64_u64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i.hash64());
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table, bench_select, bench_sampling);
criterion_main!(benches);
