//! Figure 3 — the speed/error tradeoff as a function of the purge
//! quantile: fifty variants from the 0th quantile (SMIN) to the 98th.
//!
//! Paper shapes to reproduce (§4.4): runtime falls steeply from q=0 to
//! q≈50 with diminishing returns beyond (98th only 20–30% faster than
//! 20th); maximum error grows slowly up to q≈70 and sharply after.
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin fig3_quantile_sweep \
//!     [--quick|--full|--updates N] [--kvalues 3072,24576]
//! ```

#![forbid(unsafe_code)]

use streamfreq_bench::{exact_of, parse_scale_args, print_header, run_algo, Algo};
use streamfreq_core::FrequencyEstimator;
use streamfreq_workloads::{CaidaConfig, SyntheticCaida};

fn k_values() -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--kvalues") {
        if let Some(list) = args.get(pos + 1) {
            return list
                .split(',')
                .map(|s| s.parse().expect("--kvalues wants comma-separated integers"))
                .collect();
        }
    }
    vec![3_072, 24_576]
}

fn main() {
    let updates = parse_scale_args();
    let config = CaidaConfig::scaled(updates);
    eprintln!(
        "generating synthetic CAIDA-like trace: {} updates, {} flows ...",
        config.num_updates, config.num_flows
    );
    let stream = SyntheticCaida::materialize(&config);
    let truth = exact_of(&stream);

    println!("# Figure 3: time and max error vs purge quantile (50 variants)");
    print_header(&[
        "k",
        "quantile",
        "seconds",
        "updates_per_sec",
        "max_error",
        "error_over_N",
    ]);
    for k in k_values() {
        for step in 0..50 {
            let q = (step * 2) as f64 / 100.0; // 0.00, 0.02, …, 0.98
            let r = run_algo(Algo::Quantile(q), k, &stream, Some(&truth));
            let err = r.max_error.expect("truth supplied");
            println!(
                "{k}\t{:.2}\t{:.3}\t{:.3e}\t{err}\t{:.3e}",
                q,
                r.elapsed.as_secs_f64(),
                r.updates_per_sec,
                err as f64 / truth.stream_weight() as f64
            );
        }
    }
}
