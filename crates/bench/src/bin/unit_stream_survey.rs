//! §1.1's "conventional wisdom" check — the Cormode–Hadjieleftheriou
//! survey comparison on **unit-weight** streams, which established that
//! (a) the Stream Summary implementation (SSL) of Space Saving is
//! noticeably faster than the min-heap implementation (SSH) but more
//! space-hungry, and (b) counter-based algorithms are the practical
//! choice. The paper's contribution overturns the follow-on assumption
//! that the heap is the right vehicle for *weighted* streams; this
//! harness verifies we reproduce the unit-stream landscape that wisdom
//! came from, with the paper's sketch included.
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin unit_stream_survey [--quick|--full|--updates N]
//! ```

#![forbid(unsafe_code)]

use std::time::Instant;

use streamfreq_baselines::{ExactCounter, MisraGries, SpaceSavingHeap, StreamSummary};
use streamfreq_bench::{parse_scale_args, print_header};
use streamfreq_core::{FreqSketch, FrequencyEstimator, PurgePolicy};
use streamfreq_workloads::{CaidaConfig, SyntheticCaida};

fn main() {
    let updates = parse_scale_args();
    let config = CaidaConfig::scaled(updates);
    eprintln!(
        "generating trace ({} packets, unit weights) ...",
        config.num_updates
    );
    // Unit-weight view of the trace: count packets, not bits.
    let stream: Vec<u64> = SyntheticCaida::new(&config).map(|(ip, _)| ip).collect();
    let mut exact = ExactCounter::new();
    for &ip in &stream {
        exact.update(ip, 1);
    }

    let k = 4_096usize;
    println!(
        "# Unit-update comparison at k = {k} counters, {} updates",
        stream.len()
    );
    print_header(&[
        "algo",
        "seconds",
        "updates_per_sec",
        "memory_bytes",
        "max_error",
    ]);

    // Misra-Gries (hash map).
    let mut mg = MisraGries::new(k);
    let t0 = Instant::now();
    for &ip in &stream {
        mg.update_unit(ip);
    }
    let t_mg = t0.elapsed().as_secs_f64();
    let mg_mem = k * (16 + 1) * 8 / 7; // map payload at hashbrown load
    let e_mg = exact.max_abs_error(|i| mg.estimate(i));
    println!(
        "MG\t{t_mg:.3}\t{:.3e}\t{mg_mem}\t{e_mg}",
        stream.len() as f64 / t_mg
    );

    // Space Saving, min-heap (SSH).
    let mut ssh = SpaceSavingHeap::new(k);
    let t0 = Instant::now();
    for &ip in &stream {
        ssh.update_one(ip);
    }
    let t_ssh = t0.elapsed().as_secs_f64();
    let e_ssh = exact.max_abs_error(|i| ssh.estimate(i));
    println!(
        "SSH\t{t_ssh:.3}\t{:.3e}\t{}\t{e_ssh}",
        stream.len() as f64 / t_ssh,
        ssh.memory_bytes()
    );

    // Space Saving, Stream Summary (SSL).
    let mut ssl = StreamSummary::new(k);
    let t0 = Instant::now();
    for &ip in &stream {
        ssl.update_one(ip);
    }
    let t_ssl = t0.elapsed().as_secs_f64();
    let e_ssl = exact.max_abs_error(|i| ssl.estimate(i));
    println!(
        "SSL\t{t_ssl:.3}\t{:.3e}\t{}\t{e_ssl}",
        stream.len() as f64 / t_ssl,
        ssl.memory_bytes()
    );

    // This paper's sketch on the same unit stream.
    let mut smed = FreqSketch::builder(k)
        .policy(PurgePolicy::smed())
        .grow_from_small(false)
        .build()
        .expect("valid k");
    let t0 = Instant::now();
    for &ip in &stream {
        smed.update_one(ip);
    }
    let t_smed = t0.elapsed().as_secs_f64();
    let e_smed = exact.max_abs_error(|i| smed.estimate(i));
    println!(
        "SMED\t{t_smed:.3}\t{:.3e}\t{}\t{e_smed}",
        stream.len() as f64 / t_smed,
        smed.memory_bytes()
    );

    println!();
    println!("# survey shapes: SSL faster than SSH but bigger; SMED competitive with SSL's");
    println!("# speed at SSH-or-better space — the §1.1 'no min-heap needed' conclusion");
    println!(
        "# SSL_vs_SSH speedup: {:.2}x; SSL/SMED space: {:.2}x",
        t_ssh / t_ssl,
        ssl.memory_bytes() as f64 / smed.memory_bytes() as f64
    );
}
