//! Figure 2 — maximum-error comparison of SMED, SMIN (≡ RBMC), and MHE on
//! the packet trace, equal-space and equal-counters.
//!
//! Paper shapes to reproduce (§4.3): at equal space SMED's maximum error is
//! 18–29% above MHE's; RBMC/SMIN are indistinguishable from each other and
//! clearly better than both; doubling SMED's counters erases its gap. At
//! equal counters RBMC, MHE and SMIN are indistinguishable (they are
//! isomorphic up to one counter, §1.4).
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin fig2_error [--quick|--full|--updates N]
//! ```

#![forbid(unsafe_code)]

use std::collections::HashMap;

use streamfreq_baselines::SpaceSavingHeap;
use streamfreq_bench::{exact_of, parse_scale_args, print_header, run_algo, Algo, PAPER_K_VALUES};
use streamfreq_core::FrequencyEstimator;
use streamfreq_workloads::{CaidaConfig, SyntheticCaida};

fn main() {
    let updates = parse_scale_args();
    let config = CaidaConfig::scaled(updates);
    eprintln!(
        "generating synthetic CAIDA-like trace: {} updates, {} flows ...",
        config.num_updates, config.num_flows
    );
    let stream = SyntheticCaida::materialize(&config);
    eprintln!("building exact ground truth ...");
    let truth = exact_of(&stream);
    let n = truth.stream_weight();
    eprintln!("N = {n}, distinct = {}", truth.num_distinct());

    // One measured run per configuration, reused by every panel.
    let mut errs: HashMap<(String, usize), u64> = HashMap::new();
    let mut measure = |algo: Algo, k: usize| -> u64 {
        let key = (algo.name(), k);
        if let Some(&e) = errs.get(&key) {
            return e;
        }
        let e = run_algo(algo, k, &stream, Some(&truth))
            .max_error
            .expect("truth supplied");
        errs.insert(key, e);
        e
    };

    println!("# Figure 2a: maximum error at equal space");
    print_header(&["budget_bytes", "algo", "k", "max_error", "error_over_N"]);
    for &k in &PAPER_K_VALUES {
        let budget = 24 * k;
        for (algo, kk) in [
            (Algo::Smed, k),
            (Algo::Smin, k),
            (Algo::Rbmc, k),
            (Algo::Mhe, SpaceSavingHeap::counters_for_bytes(budget)),
        ] {
            let err = measure(algo, kk);
            println!(
                "{budget}\t{}\t{kk}\t{err}\t{:.3e}",
                algo.name(),
                err as f64 / n as f64
            );
        }
    }

    println!();
    println!("# Figure 2b: maximum error at equal counters");
    print_header(&["k", "algo", "max_error", "error_over_N"]);
    for &k in &PAPER_K_VALUES {
        for algo in [Algo::Smed, Algo::Smin, Algo::Rbmc, Algo::Mhe] {
            let err = measure(algo, k);
            println!("{k}\t{}\t{err}\t{:.3e}", algo.name(), err as f64 / n as f64);
        }
    }

    println!();
    println!("# Error-ratio summary (equal space; SMIN as the accuracy reference)");
    print_header(&["k", "SMED_over_MHE", "SMED_over_SMIN", "MHE_over_SMIN"]);
    for &k in &PAPER_K_VALUES {
        let budget = 24 * k;
        let smed = measure(Algo::Smed, k).max(1) as f64;
        let smin = measure(Algo::Smin, k).max(1) as f64;
        let mhe = measure(Algo::Mhe, SpaceSavingHeap::counters_for_bytes(budget)).max(1) as f64;
        println!(
            "{k}\t{:.2}x\t{:.2}x\t{:.2}x",
            smed / mhe,
            smed / smin,
            mhe / smin
        );
    }
}
