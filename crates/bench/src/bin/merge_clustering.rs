//! §3.2's Note — merging two summaries that share a hash function must
//! not iterate the source table front-to-back, or the insertion order
//! correlates with destination probe positions and clusters the table.
//!
//! Our [`FreqSketch::merge`] replays in randomized order; the sequential
//! order is reproduced here via `absorb_counters` over the table-order
//! iterator, and both are timed over repeated merges.
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin merge_clustering [--pairs N]
//! ```

#![forbid(unsafe_code)]

use std::time::Instant;

use streamfreq_bench::{parse_flag, print_header};
use streamfreq_core::{FreqSketch, PurgePolicy};
use streamfreq_workloads::{fill_stream, MergeWorkloadConfig};

fn filled(k: usize, cfg: &MergeWorkloadConfig, index: u64) -> FreqSketch {
    // Same default seed for every sketch: both summaries use the same hash
    // function AND the same purge-sampler seed — the §3.2 worst case.
    let mut s = FreqSketch::builder(k)
        .policy(PurgePolicy::smed())
        .grow_from_small(false)
        .build()
        .expect("invalid k");
    for (item, w) in fill_stream(cfg, index) {
        s.update(item, w);
    }
    s
}

fn main() {
    let pairs = parse_flag("--pairs", 50);
    let k = parse_flag("--k", 16_384);
    let cfg = MergeWorkloadConfig {
        updates_per_sketch: 200_000,
        ..MergeWorkloadConfig::default()
    };
    let sketches: Vec<(FreqSketch, FreqSketch)> = (0..pairs as u64)
        .map(|i| (filled(k, &cfg, 2 * i), filled(k, &cfg, 2 * i + 1)))
        .collect();

    print_header(&["order", "seconds", "merges_per_sec"]);

    // Randomized order (the shipped merge).
    let start = Instant::now();
    for (a, b) in &sketches {
        let mut dst = a.clone();
        dst.merge(b);
    }
    let t_rand = start.elapsed().as_secs_f64();
    println!("randomized\t{t_rand:.4}\t{:.1}", pairs as f64 / t_rand);

    // Sequential table order (the §3.2 anti-pattern).
    let start = Instant::now();
    for (a, b) in &sketches {
        let mut dst = a.clone();
        dst.absorb_counters(b.counters(), b.stream_weight(), b.maximum_error());
    }
    let t_seq = start.elapsed().as_secs_f64();
    println!("sequential\t{t_seq:.4}\t{:.1}", pairs as f64 / t_seq);

    println!();
    println!(
        "# sequential/randomized time ratio: {:.2}x (>1 indicates probe clustering)",
        t_seq / t_rand
    );
}
