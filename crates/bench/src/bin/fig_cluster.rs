//! Cluster-mode throughput: sharded wire ingest and merging fan-out
//! queries against the single-node floor, recorded into
//! `BENCH_cluster.json`.
//!
//! Cluster mode buys horizontal capacity with two taxes: every update
//! crosses a socket (framing + routing + `INGEST` acks), and every
//! query pays a full `SNAP` fan-out plus an Algorithm-5 merge of the
//! per-node engines. This bench puts numbers on both against the
//! in-process floors they must be judged by:
//!
//! * `single_node_direct` — `ShardedSketch::ingest_parallel` on one
//!   bank: the no-network ingest floor.
//! * `cluster_ingest` — the real `cluster-ingest` client routing the
//!   same stream to 3 wire-ingest `serve` nodes over loopback.
//! * `local_bank_est` — point estimates against one merged bank: the
//!   no-network query floor.
//! * `cluster_query_est` — `cluster-query EST`, each query a full
//!   3-node fan-out + merge (the query tier's cold path).
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin fig_cluster -- \
//!     [--updates N] [--json PATH] [--smoke]
//! ```
//!
//! `--smoke` shrinks the stream and query counts to a CI-sized guard
//! that the whole cluster stack still runs end to end.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use streamfreq_bench::{parse_flag, print_header};
use streamfreq_cli::cluster::{
    run_cluster_ingest, run_cluster_query, ClusterIngestOptions, ClusterQueryOptions,
};
use streamfreq_cli::serve::{run_serve, ServeOptions, DEFAULT_REMOTE_TIMEOUT_MS};
use streamfreq_core::cluster::{NodeSpec, Topology};
use streamfreq_core::{FreqSketch, FsyncPolicy, PurgePolicy, ShardedSketch};
use streamfreq_workloads::{save_binary, CaidaConfig, SyntheticCaida};

/// Counter budget per node (and for the single-node floor bank).
const K: usize = 4_096;

/// Shards per node, matching `streamfreq serve` conventions.
const SHARDS: usize = 4;

/// Cluster width for the wire modes.
const NODES: usize = 3;

struct Row {
    mode: &'static str,
    ops: u64,
    seconds: f64,
    ops_per_sec: f64,
}

fn row(mode: &'static str, ops: u64, seconds: f64) -> Row {
    Row {
        mode,
        ops,
        seconds,
        ops_per_sec: ops as f64 / seconds.max(1e-9),
    }
}

/// Spawns one in-process wire-ingest node and returns its address and
/// join handle (the node exits on `QUIT`).
fn spawn_node(dir: &Path, id: usize) -> (String, std::thread::JoinHandle<()>) {
    let port_file = dir.join(format!("port-{id}"));
    let opts = ServeOptions {
        port: 0,
        port_file: Some(port_file.clone()),
        k: K,
        policy: PurgePolicy::smed(),
        seed: 7,
        threads: 1,
        shards: SHARDS,
        passes: 1,
        snapshot_ms: 5,
        input: None,
        data_dir: None,
        fsync: FsyncPolicy::default(),
        checkpoint_ms: 0,
    };
    let handle = std::thread::spawn(move || {
        run_serve(&opts).expect("node failed");
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if text.contains(':') {
                break text.trim().to_string();
            }
        }
        assert!(Instant::now() < deadline, "node {id} never bound");
        std::thread::sleep(Duration::from_millis(2));
    };
    (addr, handle)
}

fn quit_node(addr: &str) {
    use std::io::Write;
    if let Ok(mut conn) = std::net::TcpStream::connect(addr) {
        let _ = conn.write_all(b"QUIT\n");
    }
}

fn results_to_json(updates: usize, ingest: &[Row], query: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"updates\": {updates},\n"));
    out.push_str(&format!("  \"nodes\": {NODES},\n"));
    for (section, rows) in [("ingest", ingest), ("query", query)] {
        out.push_str(&format!("  \"{section}\": [\n"));
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"ops\": {}, \"seconds\": {:.6}, \
                 \"ops_per_sec\": {:.1}}}{}\n",
                r.mode,
                r.ops,
                r.seconds,
                r.ops_per_sec,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str(if section == "ingest" {
            "  ],\n"
        } else {
            "  ]\n"
        });
    }
    out.push('}');
    out.push('\n');
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let updates = if smoke {
        60_000
    } else {
        parse_flag("--updates", 2_000_000)
    };
    let queries: usize = if smoke { 25 } else { 200 };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|p| args.get(p + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_cluster.json".to_string());

    eprintln!("generating synthetic CAIDA stream: {updates} updates ...");
    let config = CaidaConfig::scaled(updates);
    let stream: Vec<(u64, u64)> = SyntheticCaida::new(&config).collect();

    let dir = std::env::temp_dir().join(format!("sf-fig-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let input = dir.join("stream.bin");
    save_binary(&stream, &input).expect("save stream");

    // Single-node floors.
    let mut bank: ShardedSketch<u64> = ShardedSketch::builder(SHARDS, K / SHARDS)
        .policy(PurgePolicy::smed())
        .seed(7)
        .build()
        .expect("bank configuration");
    let start = Instant::now();
    bank.update_batch(&stream);
    let direct = row(
        "single_node_direct",
        stream.len() as u64,
        start.elapsed().as_secs_f64(),
    );

    let merged = FreqSketch::from(bank.merged_with_capacity(K));
    let probe: Vec<u64> = stream.iter().rev().take(64).map(|&(i, _)| i).collect();
    let local_reps = queries * 1_000;
    let start = Instant::now();
    let mut sink = 0u64;
    for q in 0..local_reps {
        sink ^= merged.estimate(probe[q % probe.len()]);
    }
    let local = row(
        "local_bank_est",
        local_reps as u64,
        start.elapsed().as_secs_f64(),
    );
    std::hint::black_box(sink);

    // The 3-node cluster over loopback.
    let spawned: Vec<(String, std::thread::JoinHandle<()>)> =
        (0..NODES).map(|id| spawn_node(&dir, id)).collect();
    let nodes: Vec<NodeSpec> = spawned
        .iter()
        .enumerate()
        .map(|(i, (addr, _))| NodeSpec {
            id: i as u64 + 1,
            addr: addr.clone(),
        })
        .collect();
    let topology = Topology::new(1, 32, nodes).expect("topology");
    let topo_path: PathBuf = dir.join("topology.sftopo");
    std::fs::write(&topo_path, topology.encode()).expect("write topology");

    let start = Instant::now();
    run_cluster_ingest(&ClusterIngestOptions {
        topology: topo_path.clone(),
        input: input.clone(),
        batch: 4_096,
        timeout_ms: DEFAULT_REMOTE_TIMEOUT_MS,
        retries: 2,
    })
    .expect("cluster ingest");
    let wire = row(
        "cluster_ingest",
        stream.len() as u64,
        start.elapsed().as_secs_f64(),
    );

    let start = Instant::now();
    for q in 0..queries {
        let request = vec!["EST".to_string(), probe[q % probe.len()].to_string()];
        run_cluster_query(&ClusterQueryOptions {
            topology: topo_path.clone(),
            k: K,
            policy: PurgePolicy::smed(),
            seed: 7,
            request,
            timeout_ms: DEFAULT_REMOTE_TIMEOUT_MS,
            retries: 2,
        })
        .expect("cluster query");
    }
    let fanout = row(
        "cluster_query_est",
        queries as u64,
        start.elapsed().as_secs_f64(),
    );

    for (addr, _) in &spawned {
        quit_node(addr);
    }
    for (_, handle) in spawned {
        let _ = handle.join();
    }

    let ingest_rows = [direct, wire];
    let query_rows = [local, fanout];
    println!("# Cluster mode vs single-node floor ({NODES} nodes, k = {K})");
    print_header(&["mode", "ops", "seconds", "ops_per_sec"]);
    for r in ingest_rows.iter().chain(&query_rows) {
        println!(
            "{}\t{}\t{:.3}\t{:.3e}",
            r.mode, r.ops, r.seconds, r.ops_per_sec
        );
    }

    let json = results_to_json(updates, &ingest_rows, &query_rows);
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
