//! Figure 4 — merge throughput: our Algorithm 5 merge vs the Agarwal et
//! al. procedure in its sort (ACH+13) and quickselect (Hoa61)
//! implementations, merging 50 pairs of SMED sketches filled from the
//! §4.5 workload (Zipf α = 1.05 ids, uniform weights 1–10 000).
//!
//! Paper shapes to reproduce (§4.5): our merge 8.6–10× faster than ACH+13
//! and 1.9–2.3× faster than Hoa61 (faster the bigger the sketch), error
//! within 2.5%, and 2.5× less space (no 2k-counter scratch table).
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin fig4_merge [--pairs N] [--fill N]
//! ```

#![forbid(unsafe_code)]

use std::time::Instant;

use streamfreq_baselines::{ach_merge_quickselect, ach_merge_sort, ExactCounter, MergedCounters};
use streamfreq_bench::{parse_flag, print_header};
use streamfreq_core::{FreqSketch, FrequencyEstimator, PurgePolicy};
use streamfreq_workloads::{fill_stream, MergeWorkloadConfig};

fn filled_sketch(k: usize, cfg: &MergeWorkloadConfig, index: u64) -> FreqSketch {
    let mut s = FreqSketch::builder(k)
        .policy(PurgePolicy::smed())
        .grow_from_small(false)
        .seed(1000 + index)
        .build()
        .expect("invalid k");
    for (item, w) in fill_stream(cfg, index) {
        s.update(item, w);
    }
    s
}

fn counters_of(s: &FreqSketch) -> Vec<(u64, u64)> {
    s.counters().collect()
}

fn main() {
    let pairs = parse_flag("--pairs", 50);
    let fill = parse_flag("--fill", 100_000);
    let k_values = [1_024usize, 4_096, 16_384, 65_536];

    println!("# Figure 4: seconds to merge {pairs} sketch pairs (fill = {fill} updates/sketch)");
    print_header(&[
        "k",
        "ours_sec",
        "hoa61_sec",
        "ach13_sec",
        "ach13_vs_ours",
        "hoa61_vs_ours",
    ]);
    for &k in &k_values {
        // Keep sketches saturated: a k-counter sketch needs comfortably
        // more than k distinct items to exercise purging and give the
        // error comparison meaning.
        let cfg = MergeWorkloadConfig {
            updates_per_sketch: fill.max(4 * k),
            ..MergeWorkloadConfig::default()
        };
        // Pre-fill all sketches outside the timed region, and pre-clone a
        // destination per pair so every procedure starts from identical
        // state without clone costs inside the timing. Every procedure's
        // timed region includes reading the source summary's counters —
        // both ours (internal scan) and Agarwal et al.'s (the "add all
        // counters into a fresh table" step).
        let sketches: Vec<(FreqSketch, FreqSketch)> = (0..pairs as u64)
            .map(|i| {
                (
                    filled_sketch(k, &cfg, 2 * i),
                    filled_sketch(k, &cfg, 2 * i + 1),
                )
            })
            .collect();

        // Ours: Algorithm 5 — replay the second sketch into the first.
        let mut destinations: Vec<FreqSketch> = sketches.iter().map(|(a, _)| a.clone()).collect();
        let start = Instant::now();
        for (dst, (_, b)) in destinations.iter_mut().zip(&sketches) {
            dst.merge(b);
        }
        let t_ours = start.elapsed().as_secs_f64();
        let ours = destinations;

        // Hoa61: quickselect-based Agarwal et al.
        let start = Instant::now();
        let hoa: Vec<MergedCounters> = sketches
            .iter()
            .map(|(a, b)| ach_merge_quickselect(&counters_of(a), &counters_of(b), k))
            .collect();
        let t_hoa = start.elapsed().as_secs_f64();

        // ACH+13: sort-based Agarwal et al.
        let start = Instant::now();
        let ach: Vec<MergedCounters> = sketches
            .iter()
            .map(|(a, b)| ach_merge_sort(&counters_of(a), &counters_of(b), k))
            .collect();
        let t_ach = start.elapsed().as_secs_f64();

        println!(
            "{k}\t{t_ours:.4}\t{t_hoa:.4}\t{t_ach:.4}\t{:.1}x\t{:.1}x",
            t_ach / t_ours,
            t_hoa / t_ours
        );

        // Error comparison on the first pair (vs exact concatenation).
        let mut exact = ExactCounter::new();
        for idx in [0u64, 1] {
            for (item, w) in fill_stream(&cfg, idx) {
                exact.update(item, w);
            }
        }
        let ours_err = exact.max_abs_error(|i| ours[0].estimate(i));
        let hoa_err = exact.max_abs_error(|i| hoa[0].estimate(i));
        let ach_err = exact.max_abs_error(|i| ach[0].estimate(i));
        println!(
            "# k={k} max-error ours={ours_err} hoa61={hoa_err} ach13={ach_err} (ours/ach13 = {:.3})",
            ours_err as f64 / ach_err.max(1) as f64
        );
    }

    println!();
    println!(
        "# Space: ours merges in place (no scratch); ACH/Hoa allocate a 2k scratch map + k output"
    );
}
