//! Temporal-layer ingest throughput: decayed and windowed sketches over
//! the drifting-hot-set workload, recorded into `BENCH_temporal.json`.
//!
//! The temporal layer (`streamfreq-apps`' `DecayedSketch` and
//! `WindowedStore<K>`) rides the same engine core as every other
//! variant, so its ingest cost should be the engine's batch-path cost
//! plus the temporal bookkeeping: one `scale_counters` compaction per
//! epoch tick (decayed) or one serialize-and-reopen per bucket roll
//! (windowed). This bench measures exactly that overhead against the
//! plain `FreqSketch` batch path on the identical update sequence *fed
//! at the identical per-run granularity* (timestamps ignored) — plus a
//! `freq_oneshot` context row showing the whole-stream-in-one-call
//! ceiling — and records the rows so future engine changes can be
//! checked for temporal-path regressions.
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin fig_temporal -- \
//!     [--updates N] [--epochs E] [--json PATH] [--smoke]
//! ```
//!
//! `--smoke` shrinks to one small configuration with a single
//! repetition — the CI guard that the temporal binaries still run.

#![forbid(unsafe_code)]

use std::time::Instant;

use streamfreq_apps::{DecayedSketch, WindowedStore};
use streamfreq_bench::{parse_flag, print_header};
use streamfreq_core::FreqSketch;
use streamfreq_workloads::{materialize_drifting_zipf, tick_runs, DriftConfig, TimedUpdate};

/// Counter budgets: the paper's largest configuration and a larger
/// DRAM-resident table (the prefetching batch path's target regime).
const TEMPORAL_KS: [usize; 2] = [24_576, 262_144];

/// Median-of-N repetitions per measurement.
const TEMPORAL_REPS: usize = 3;

/// One measured temporal-ingest row.
struct TemporalResult {
    mode: &'static str,
    k: usize,
    epochs: u64,
    updates: usize,
    seconds: f64,
    updates_per_sec: f64,
    checksum: u64,
}

/// Runs one ingestion pass of `mode` and returns the measured row.
fn run_mode(
    mode: &'static str,
    k: usize,
    epochs: u64,
    stream: &[TimedUpdate],
    runs: &[(u64, std::ops::Range<usize>)],
    batch: &[(u64, u64)],
) -> TemporalResult {
    // Probe the stream's tail: the temporal modes deliberately forget the
    // early epochs, so only recent items make a meaningful checksum.
    let probe: Vec<u64> = stream
        .iter()
        .rev()
        .take(64)
        .map(|&(_, item, _)| item)
        .collect();
    let epoch_len = 1_000u64;
    let (seconds, checksum) = match mode {
        "decayed_batch" => {
            let mut s: DecayedSketch<u64> = DecayedSketch::new(k, epoch_len, (1, 2));
            let start = Instant::now();
            for (t, range) in runs {
                s.record_batch(*t, &batch[range.clone()]);
            }
            let secs = start.elapsed().as_secs_f64();
            (secs, probe.iter().map(|i| s.lower_bound(i)).sum())
        }
        "decayed_lazy" => {
            // Same decayed semantics with per-tick scaling deferred:
            // epoch ticks fold into a pending scale in O(1) and updates
            // join forward-inflated, so the per-epoch counter sweep
            // disappears from the hot path.
            let mut s: DecayedSketch<u64> = DecayedSketch::new(k, epoch_len, (1, 2)).lazy();
            let start = Instant::now();
            for (t, range) in runs {
                s.record_batch(*t, &batch[range.clone()]);
            }
            let secs = start.elapsed().as_secs_f64();
            (secs, probe.iter().map(|i| s.lower_bound(i)).sum())
        }
        "decayed_scalar" => {
            let mut s: DecayedSketch<u64> = DecayedSketch::new(k, epoch_len, (1, 2));
            let start = Instant::now();
            for &(t, item, w) in stream {
                s.record(t, item, w);
            }
            let secs = start.elapsed().as_secs_f64();
            (secs, probe.iter().map(|i| s.lower_bound(i)).sum())
        }
        "windowed_batch" => {
            let mut s: WindowedStore<u64> = WindowedStore::new(epoch_len, k);
            let start = Instant::now();
            for (t, range) in runs {
                s.record_batch(*t, &batch[range.clone()]);
            }
            let secs = start.elapsed().as_secs_f64();
            let open = s
                .query_range(stream.last().map_or(0, |&(t, _, _)| t), u64::MAX)
                .expect("stored buckets are valid")
                .expect("open window exists");
            (secs, probe.iter().map(|i| open.lower_bound(i)).sum())
        }
        "freq_batch" => {
            // Baseline: the same updates through the plain engine batch
            // path at the same feeding granularity as the temporal modes
            // (one call per timestamp run, timestamps ignored). This is
            // the honest cost floor for the `vs_freq` ratios: the
            // temporal layers *cannot* see more than a run at a time, so
            // a one-shot baseline would charge them for the driver's
            // batch granularity, not for temporal bookkeeping. Engine
            // config matches the temporal wrappers exactly (default
            // grow-from-small) for the same reason.
            let mut s = FreqSketch::builder(k).build().expect("invalid k");
            let start = Instant::now();
            for (_, range) in runs {
                s.update_batch(&batch[range.clone()]);
            }
            let secs = start.elapsed().as_secs_f64();
            (secs, probe.iter().map(|&i| s.lower_bound(i)).sum())
        }
        "freq_oneshot" => {
            // Context row: the whole stream in a single `update_batch`
            // call — the ceiling the engine reaches when a caller can
            // hand it arbitrarily large batches (bigger in-batch
            // aggregation windows, fewer per-call fixed costs).
            let mut s = FreqSketch::builder(k).build().expect("invalid k");
            let start = Instant::now();
            s.update_batch(batch);
            let secs = start.elapsed().as_secs_f64();
            (secs, probe.iter().map(|&i| s.lower_bound(i)).sum())
        }
        other => unreachable!("unknown mode {other}"),
    };
    TemporalResult {
        mode,
        k,
        epochs,
        updates: stream.len(),
        seconds,
        updates_per_sec: stream.len() as f64 / seconds,
        checksum,
    }
}

/// [`run_mode`] repeated `reps` times, keeping the median-throughput run.
fn run_mode_median(
    mode: &'static str,
    k: usize,
    epochs: u64,
    stream: &[TimedUpdate],
    runs: &[(u64, std::ops::Range<usize>)],
    batch: &[(u64, u64)],
    reps: usize,
) -> TemporalResult {
    assert!(reps > 0);
    let mut results: Vec<TemporalResult> = (0..reps)
        .map(|_| run_mode(mode, k, epochs, stream, runs, batch))
        .collect();
    results.sort_by(|a, b| {
        a.updates_per_sec
            .partial_cmp(&b.updates_per_sec)
            .expect("throughput is never NaN")
    });
    results.swap_remove(results.len() / 2)
}

fn results_to_json(updates: usize, results: &[TemporalResult]) -> String {
    let hardware_threads = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"fig_temporal_ingest\",\n");
    out.push_str(&format!("  \"updates\": {updates},\n"));
    // Recorded so absolute rates from differently-sized machines are
    // never compared as like-for-like.
    out.push_str(&format!("  \"hardware_threads\": {hardware_threads},\n"));
    out.push_str("  \"workload\": \"drifting_zipf\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        // Normalize each row to the freq_batch floor *at the same k*:
        // the ratio is comparable across machines and VM-noise phases
        // even when the absolute rates are not.
        let floor = results
            .iter()
            .find(|f| f.k == r.k && f.mode == "freq_batch")
            .map(|f| f.updates_per_sec);
        let vs_freq = floor.map_or(String::from("null"), |f| {
            format!("{:.4}", r.updates_per_sec / f)
        });
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"k\": {}, \"epochs\": {}, \"updates\": {}, \
             \"seconds\": {:.6}, \"updates_per_sec\": {:.1}, \"vs_freq_batch\": {}, \
             \"checksum\": {}}}{}\n",
            r.mode,
            r.k,
            r.epochs,
            r.updates,
            r.seconds,
            r.updates_per_sec,
            vs_freq,
            r.checksum,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let updates = if smoke {
        200_000
    } else {
        parse_flag("--updates", 2_000_000)
    };
    let epochs = parse_flag("--epochs", 16) as u64;
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|p| args.get(p + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_temporal.json".to_string());
    let (ks, reps): (Vec<usize>, usize) = if smoke {
        (vec![4_096], 1)
    } else {
        (TEMPORAL_KS.to_vec(), TEMPORAL_REPS)
    };

    eprintln!("generating drifting Zipf stream: {updates} updates, {epochs} epochs ...");
    let config = DriftConfig {
        updates,
        epochs,
        epoch_len: 1_000,
        ..DriftConfig::default()
    };
    let stream = materialize_drifting_zipf(&config);
    let runs = tick_runs(&stream);
    let batch: Vec<(u64, u64)> = stream.iter().map(|&(_, item, w)| (item, w)).collect();

    println!("# Temporal-layer ingest: decayed + windowed vs plain batch");
    print_header(&[
        "mode",
        "k",
        "epochs",
        "seconds",
        "updates_per_sec",
        "vs_freq",
    ]);
    let mut results: Vec<TemporalResult> = Vec::new();
    for &k in &ks {
        let mut freq_rate = 0.0f64;
        for mode in [
            "freq_batch",
            "freq_oneshot",
            "decayed_batch",
            "decayed_lazy",
            "decayed_scalar",
            "windowed_batch",
        ] {
            let r = run_mode_median(mode, k, epochs, &stream, &runs, &batch, reps);
            if mode == "freq_batch" {
                freq_rate = r.updates_per_sec;
            }
            println!(
                "{}\t{}\t{}\t{:.3}\t{:.3e}\t{:.2}x",
                r.mode,
                r.k,
                r.epochs,
                r.seconds,
                r.updates_per_sec,
                r.updates_per_sec / freq_rate
            );
            results.push(r);
        }
    }

    let json = results_to_json(updates, &results);
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
