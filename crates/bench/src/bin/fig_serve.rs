//! Serving-layer throughput: sustained `ConcurrentSketch` ingest with
//! and without a concurrent query load, recorded into `BENCH_serve.json`.
//!
//! The serving layer adds two costs on top of the sharded ingest
//! pipeline it wraps: the bounded channels between writers and shard
//! workers, and the periodic Algorithm-5 snapshot merges. This bench
//! quantifies both, then adds a query thread hammering the published
//! snapshots to confirm the design property that matters — **queries do
//! not slow ingestion down** (they only clone an `Arc` out of an
//! `RwLock`; the shards never see them).
//!
//! Modes, all over the identical synthetic CAIDA-like stream:
//!
//! * `sharded_direct` — `ShardedSketch::ingest_parallel`, no channels,
//!   no serving: the cost floor of the existing ingest pipeline.
//! * `serve_ingest` — `ConcurrentSketch` ingest + drain, no snapshot
//!   publishing: isolates the channel hop.
//! * `serve_publish` — plus a 20 ms periodic snapshot publisher:
//!   isolates the snapshot merges.
//! * `serve_query` — plus a query thread running `TOPK`-shaped snapshot
//!   reads in a closed loop for the whole ingest: the headline
//!   "sustained ingest under query fire" row.
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin fig_serve -- \
//!     [--updates N] [--json PATH] [--smoke]
//! ```
//!
//! `--smoke` shrinks to one small configuration with a single
//! repetition — the CI guard that the serving binary still runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use streamfreq_bench::{parse_flag, print_header};
use streamfreq_core::{ConcurrentSketch, ShardedSketch};
use streamfreq_workloads::{CaidaConfig, SyntheticCaida};

/// The paper's largest counter configuration (§4.1).
const SERVE_K: usize = 24_576;

/// Shard-bank width: wide enough to exercise routing and merging, and
/// the same per-shard budget convention as `streamfreq serve`.
const SERVE_SHARDS: usize = 8;

/// Periodic snapshot interval for the publishing modes.
const PUBLISH_MS: u64 = 20;

/// Median-of-N repetitions per measurement.
const SERVE_REPS: usize = 3;

/// One measured serving row.
struct ServeResult {
    mode: &'static str,
    writers: usize,
    shards: usize,
    k: usize,
    updates: usize,
    seconds: f64,
    updates_per_sec: f64,
    queries: u64,
    queries_per_sec: f64,
    snapshots: u64,
    checksum: u64,
}

/// Runs one ingestion pass of `mode` and returns the measured row.
fn run_mode(mode: &'static str, writers: usize, k: usize, stream: &[(u64, u64)]) -> ServeResult {
    let k_per_shard = (k / SERVE_SHARDS).max(1);
    let probe: Vec<u64> = stream
        .iter()
        .rev()
        .take(64)
        .map(|&(item, _)| item)
        .collect();
    let (seconds, queries, snapshots, checksum) = match mode {
        "sharded_direct" => {
            let mut bank: ShardedSketch<u64> = ShardedSketch::builder(SERVE_SHARDS, k_per_shard)
                .grow_from_small(false)
                .build()
                .expect("invalid bank configuration");
            let start = Instant::now();
            bank.ingest_parallel(stream, writers);
            let secs = start.elapsed().as_secs_f64();
            let checksum = probe.iter().map(|i| bank.lower_bound(i)).sum();
            (secs, 0u64, 0u64, checksum)
        }
        "serve_ingest" | "serve_publish" | "serve_query" => {
            let mut builder = ConcurrentSketch::<u64>::builder(SERVE_SHARDS, k_per_shard)
                .grow_from_small(false)
                .merged_capacity(k);
            if mode != "serve_ingest" {
                builder = builder.publish_every(Duration::from_millis(PUBLISH_MS));
            }
            let mut sketch = builder.build().expect("invalid serve configuration");
            let reader = sketch.reader();
            let done = Arc::new(AtomicBool::new(false));
            let query_thread = (mode == "serve_query").then(|| {
                let reader = reader.clone();
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut queries = 0u64;
                    let mut sink = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let snap = reader.snapshot();
                        for row in snap.top_k(10) {
                            sink ^= row.item;
                        }
                        queries += 1;
                    }
                    (queries, sink)
                })
            });
            let start = Instant::now();
            sketch.ingest_slice_parallel(stream, writers);
            sketch.drain();
            let secs = start.elapsed().as_secs_f64();
            done.store(true, Ordering::Relaxed);
            let queries = query_thread.map_or(0, |t| t.join().expect("query thread panicked").0);
            let snap = sketch.snapshot();
            let checksum = probe.iter().map(|i| snap.lower_bound(i)).sum();
            (secs, queries, snap.epoch(), checksum)
        }
        other => unreachable!("unknown mode {other}"),
    };
    ServeResult {
        mode,
        writers,
        shards: SERVE_SHARDS,
        k,
        updates: stream.len(),
        seconds,
        updates_per_sec: stream.len() as f64 / seconds,
        queries,
        queries_per_sec: queries as f64 / seconds,
        snapshots,
        checksum,
    }
}

/// [`run_mode`] repeated `reps` times, keeping the median-throughput run.
fn run_mode_median(
    mode: &'static str,
    writers: usize,
    k: usize,
    stream: &[(u64, u64)],
    reps: usize,
) -> ServeResult {
    assert!(reps > 0);
    let mut results: Vec<ServeResult> = (0..reps)
        .map(|_| run_mode(mode, writers, k, stream))
        .collect();
    results.sort_by(|a, b| {
        a.updates_per_sec
            .partial_cmp(&b.updates_per_sec)
            .expect("throughput is never NaN")
    });
    results.swap_remove(results.len() / 2)
}

fn results_to_json(updates: usize, results: &[ServeResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"fig_serve_throughput\",\n");
    out.push_str(&format!("  \"updates\": {updates},\n"));
    out.push_str("  \"workload\": \"synthetic_caida\",\n");
    out.push_str(&format!("  \"publish_interval_ms\": {PUBLISH_MS},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"writers\": {}, \"shards\": {}, \"k\": {}, \
             \"updates\": {}, \"seconds\": {:.6}, \"updates_per_sec\": {:.1}, \
             \"queries\": {}, \"queries_per_sec\": {:.1}, \"snapshots\": {}, \
             \"checksum\": {}}}{}\n",
            r.mode,
            r.writers,
            r.shards,
            r.k,
            r.updates,
            r.seconds,
            r.updates_per_sec,
            r.queries,
            r.queries_per_sec,
            r.snapshots,
            r.checksum,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let updates = if smoke {
        200_000
    } else {
        parse_flag("--updates", 4_000_000)
    };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|p| args.get(p + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let (k, reps, writer_counts): (usize, usize, Vec<usize>) = if smoke {
        (4_096, 1, vec![1])
    } else {
        (SERVE_K, SERVE_REPS, vec![1, 2])
    };

    eprintln!("generating synthetic CAIDA stream: {updates} updates ...");
    let config = CaidaConfig::scaled(updates);
    let stream: Vec<(u64, u64)> = SyntheticCaida::new(&config).collect();

    println!("# Serving-layer ingest: channels, snapshots, query load");
    print_header(&[
        "mode",
        "writers",
        "k",
        "seconds",
        "updates_per_sec",
        "queries_per_sec",
        "snapshots",
    ]);
    let mut results: Vec<ServeResult> = Vec::new();
    for &writers in &writer_counts {
        for mode in [
            "sharded_direct",
            "serve_ingest",
            "serve_publish",
            "serve_query",
        ] {
            let r = run_mode_median(mode, writers, k, &stream, reps);
            println!(
                "{}\t{}\t{}\t{:.3}\t{:.3e}\t{:.3e}\t{}",
                r.mode,
                r.writers,
                r.k,
                r.seconds,
                r.updates_per_sec,
                r.queries_per_sec,
                r.snapshots
            );
            results.push(r);
        }
    }

    let json = results_to_json(updates, &results);
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
