//! Serving-layer throughput: sustained `ConcurrentSketch` ingest with
//! and without a concurrent query load, recorded into `BENCH_serve.json`.
//!
//! The serving layer adds two costs on top of the sharded ingest
//! pipeline it wraps: the bounded channels between writers and shard
//! workers, and the periodic Algorithm-5 snapshot merges. This bench
//! quantifies both, then adds a query thread hammering the published
//! snapshots to confirm the design property that matters — **queries do
//! not slow ingestion down** (they only clone an `Arc` out of an
//! `RwLock`; the shards never see them).
//!
//! Modes, all over the identical synthetic CAIDA-like stream:
//!
//! * `sharded_direct` — `ShardedSketch::ingest_parallel`, no channels,
//!   no serving: the cost floor of the existing ingest pipeline.
//! * `serve_ingest` — `ConcurrentSketch` ingest + drain, no snapshot
//!   publishing: isolates the channel hop.
//! * `serve_publish` — plus a 20 ms periodic snapshot publisher:
//!   isolates the snapshot merges.
//! * `serve_query` — plus a query thread running `TOPK`-shaped snapshot
//!   reads in a closed loop for the whole ingest: the headline
//!   "sustained ingest under query fire" row.
//!
//! A second table measures the **wire protocols** end to end: a real
//! `streamfreq serve` event loop on loopback TCP, hammered with
//! pipelined `EST` requests — `proto_text` (newline protocol) against
//! `proto_binary` (`SFBP` length-prefixed frames). Same server, same
//! socket, same event loop; the delta is pure framing and parsing.
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin fig_serve -- \
//!     [--updates N] [--json PATH] [--smoke]
//! ```
//!
//! `--smoke` shrinks to one small configuration with a single
//! repetition, and runs the protocol servers durably (group-commit WAL
//! on) — the CI guard that the serving binary still runs end to end.

#![forbid(unsafe_code)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use streamfreq_bench::{parse_flag, print_header};
use streamfreq_cli::serve::{encode_binary_request, run_serve, ServeOptions, BINARY_MAGIC};
use streamfreq_core::{ConcurrentSketch, FsyncPolicy, PurgePolicy, ShardedSketch};
use streamfreq_workloads::{save_binary, CaidaConfig, SyntheticCaida};

/// The paper's largest counter configuration (§4.1).
const SERVE_K: usize = 24_576;

/// Shard-bank width: wide enough to exercise routing and merging, and
/// the same per-shard budget convention as `streamfreq serve`.
const SERVE_SHARDS: usize = 8;

/// Periodic snapshot interval for the publishing modes.
const PUBLISH_MS: u64 = 20;

/// Median-of-N repetitions per measurement.
const SERVE_REPS: usize = 3;

/// One measured serving row.
struct ServeResult {
    mode: &'static str,
    writers: usize,
    shards: usize,
    k: usize,
    updates: usize,
    seconds: f64,
    updates_per_sec: f64,
    queries: u64,
    queries_per_sec: f64,
    snapshots: u64,
    checksum: u64,
}

/// Runs one ingestion pass of `mode` and returns the measured row.
fn run_mode(mode: &'static str, writers: usize, k: usize, stream: &[(u64, u64)]) -> ServeResult {
    let k_per_shard = (k / SERVE_SHARDS).max(1);
    let probe: Vec<u64> = stream
        .iter()
        .rev()
        .take(64)
        .map(|&(item, _)| item)
        .collect();
    let (seconds, queries, snapshots, checksum) = match mode {
        "sharded_direct" => {
            let mut bank: ShardedSketch<u64> = ShardedSketch::builder(SERVE_SHARDS, k_per_shard)
                .grow_from_small(false)
                .build()
                .expect("invalid bank configuration");
            let start = Instant::now();
            bank.ingest_parallel(stream, writers);
            let secs = start.elapsed().as_secs_f64();
            let checksum = probe.iter().map(|i| bank.lower_bound(i)).sum();
            (secs, 0u64, 0u64, checksum)
        }
        "serve_ingest" | "serve_publish" | "serve_query" => {
            let mut builder = ConcurrentSketch::<u64>::builder(SERVE_SHARDS, k_per_shard)
                .grow_from_small(false)
                .merged_capacity(k);
            if mode != "serve_ingest" {
                builder = builder.publish_every(Duration::from_millis(PUBLISH_MS));
            }
            let mut sketch = builder.build().expect("invalid serve configuration");
            let reader = sketch.reader();
            let done = Arc::new(AtomicBool::new(false));
            let query_thread = (mode == "serve_query").then(|| {
                let reader = reader.clone();
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut queries = 0u64;
                    let mut sink = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let snap = reader.snapshot();
                        for row in snap.top_k(10) {
                            sink ^= row.item;
                        }
                        queries += 1;
                    }
                    (queries, sink)
                })
            });
            let start = Instant::now();
            sketch.ingest_slice_parallel(stream, writers);
            sketch.drain();
            let secs = start.elapsed().as_secs_f64();
            done.store(true, Ordering::Relaxed);
            let queries = query_thread.map_or(0, |t| t.join().expect("query thread panicked").0);
            let snap = sketch.snapshot();
            let checksum = probe.iter().map(|i| snap.lower_bound(i)).sum();
            (secs, queries, snap.epoch(), checksum)
        }
        other => unreachable!("unknown mode {other}"),
    };
    ServeResult {
        mode,
        writers,
        shards: SERVE_SHARDS,
        k,
        updates: stream.len(),
        seconds,
        updates_per_sec: stream.len() as f64 / seconds,
        queries,
        queries_per_sec: queries as f64 / seconds,
        snapshots,
        checksum,
    }
}

/// [`run_mode`] repeated `reps` times, keeping the median-throughput run.
fn run_mode_median(
    mode: &'static str,
    writers: usize,
    k: usize,
    stream: &[(u64, u64)],
    reps: usize,
) -> ServeResult {
    assert!(reps > 0);
    let mut results: Vec<ServeResult> = (0..reps)
        .map(|_| run_mode(mode, writers, k, stream))
        .collect();
    results.sort_by(|a, b| {
        a.updates_per_sec
            .partial_cmp(&b.updates_per_sec)
            .expect("throughput is never NaN")
    });
    results.swap_remove(results.len() / 2)
}

/// One measured wire-protocol row.
struct ProtocolRow {
    mode: &'static str,
    pipeline: usize,
    queries: u64,
    seconds: f64,
    queries_per_sec: f64,
    durable: bool,
}

/// Requests in flight per write: deep enough that syscalls amortize,
/// shallow enough that both sides stay within one socket buffer.
const PIPELINE: usize = 512;

/// Byte length of one framed binary `EST` reply:
/// `len u32le + status u8 + 3 × u64le`.
const BINARY_EST_REPLY: usize = 4 + 1 + 24;

/// Measures pipelined `EST` throughput against a real `streamfreq
/// serve` event loop over loopback TCP, in `proto` wire format.
fn run_protocol(
    mode: &'static str,
    binary: bool,
    stream: &[(u64, u64)],
    total_queries: u64,
    durable: bool,
) -> ProtocolRow {
    let tmp = std::env::temp_dir().join(format!("streamfreq-fig-serve-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create scratch dir");
    let input = tmp.join(format!("{mode}.bin"));
    save_binary(stream, &input).expect("write stream file");
    let port_file = tmp.join(format!("{mode}.port"));
    let _ = std::fs::remove_file(&port_file);
    let data_dir = durable.then(|| {
        let d = tmp.join(format!("{mode}-store"));
        let _ = std::fs::remove_dir_all(&d);
        d
    });
    let opts = ServeOptions {
        port: 0,
        port_file: Some(port_file.clone()),
        k: 4_096,
        policy: PurgePolicy::smed(),
        seed: 7,
        threads: 2,
        shards: 4,
        passes: 1,
        snapshot_ms: 20,
        input: Some(input.clone()),
        data_dir,
        fsync: FsyncPolicy::Off,
        checkpoint_ms: 0,
    };
    let server = std::thread::spawn(move || run_serve(&opts).expect("serve run"));

    // Handshake: wait for the bound address, then poll STATS on a text
    // control connection until the ingest pass has drained — protocol
    // throughput is measured against a quiescent, fully-published
    // sketch, not a moving one.
    let deadline = Instant::now() + Duration::from_secs(120);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if !s.trim().is_empty() {
                break s.trim().to_string();
            }
        }
        assert!(Instant::now() < deadline, "serve never wrote its port file");
        std::thread::sleep(Duration::from_millis(5));
    };
    let mut control = TcpStream::connect(&addr).expect("connect control");
    control.set_nodelay(true).expect("nodelay");
    let mut control_rd = BufReader::new(control.try_clone().expect("clone control"));
    loop {
        control.write_all(b"STATS\n").expect("control STATS");
        let mut line = String::new();
        control_rd.read_line(&mut line).expect("control reply");
        if line.contains("ingest_done=1") {
            break;
        }
        assert!(Instant::now() < deadline, "ingest never finished");
        std::thread::sleep(Duration::from_millis(5));
    }

    // A hot item: answered from the merged snapshot like any other, but
    // guaranteed present so replies exercise the full three-field path.
    let probe = stream[stream.len() / 2].0;
    let rounds = (total_queries / PIPELINE as u64).max(1);

    let mut conn = TcpStream::connect(&addr).expect("connect bench");
    conn.set_nodelay(true).expect("nodelay");
    conn.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    // A true pipelined client: a writer thread floods request blocks
    // back to back while this thread drains replies, so the socket
    // never runs dry and in-flight depth is bounded by the kernel
    // socket buffers plus the server's write high-water mark.
    let request = vec!["EST".to_string(), probe.to_string()];
    let queries = rounds * PIPELINE as u64;
    let seconds = if binary {
        let mut block = Vec::new();
        for _ in 0..PIPELINE {
            encode_binary_request(&request, &mut block).expect("encode EST frame");
        }
        conn.write_all(BINARY_MAGIC).expect("send magic");
        let start = Instant::now();
        let writer = {
            let mut wconn = conn.try_clone().expect("clone for writer");
            std::thread::spawn(move || {
                for _ in 0..rounds {
                    wconn.write_all(&block).expect("send frames");
                }
            })
        };
        let total = queries as usize * BINARY_EST_REPLY;
        let mut buf = vec![0u8; 1 << 20];
        let mut got = 0usize;
        let mut first = [0u8; BINARY_EST_REPLY];
        while got < total {
            let n = conn.read(&mut buf).expect("read frames");
            assert!(n > 0, "server closed mid-benchmark");
            if got < BINARY_EST_REPLY {
                let take = (BINARY_EST_REPLY - got).min(n);
                first[got..got + take].copy_from_slice(&buf[..take]);
            }
            got += n;
        }
        assert_eq!(got, total, "reply byte count must match frame math");
        assert_eq!(
            u32::from_le_bytes(first[..4].try_into().unwrap()),
            1 + 24,
            "EST reply frame length"
        );
        assert_eq!(first[4], 0, "EST reply status must be OK");
        writer.join().expect("writer thread panicked");
        start.elapsed().as_secs_f64()
    } else {
        let block = format!("EST {probe}\n").repeat(PIPELINE).into_bytes();
        let mut reader = BufReader::with_capacity(1 << 20, conn.try_clone().expect("clone bench"));
        let start = Instant::now();
        let writer = {
            let mut wconn = conn.try_clone().expect("clone for writer");
            std::thread::spawn(move || {
                for _ in 0..rounds {
                    wconn.write_all(&block).expect("send lines");
                }
            })
        };
        let mut reply = String::new();
        for i in 0..queries {
            reply.clear();
            reader.read_line(&mut reply).expect("read line");
            assert!(reply.ends_with('\n'), "server closed mid-benchmark");
            if i == 0 {
                assert!(reply.starts_with("OK "), "EST reply must be OK");
            }
        }
        writer.join().expect("writer thread panicked");
        start.elapsed().as_secs_f64()
    };

    control.write_all(b"QUIT\n").expect("send QUIT");
    drop(conn);
    drop(control);
    server.join().expect("server thread panicked");
    let _ = std::fs::remove_file(&input);
    let _ = std::fs::remove_file(&port_file);
    ProtocolRow {
        mode,
        pipeline: PIPELINE,
        queries,
        seconds,
        queries_per_sec: queries as f64 / seconds,
        durable,
    }
}

fn results_to_json(updates: usize, results: &[ServeResult], protocol: &[ProtocolRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"fig_serve_throughput\",\n");
    out.push_str(&format!("  \"updates\": {updates},\n"));
    out.push_str("  \"workload\": \"synthetic_caida\",\n");
    out.push_str(&format!("  \"publish_interval_ms\": {PUBLISH_MS},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"writers\": {}, \"shards\": {}, \"k\": {}, \
             \"updates\": {}, \"seconds\": {:.6}, \"updates_per_sec\": {:.1}, \
             \"queries\": {}, \"queries_per_sec\": {:.1}, \"snapshots\": {}, \
             \"checksum\": {}}}{}\n",
            r.mode,
            r.writers,
            r.shards,
            r.k,
            r.updates,
            r.seconds,
            r.updates_per_sec,
            r.queries,
            r.queries_per_sec,
            r.snapshots,
            r.checksum,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"protocol\": [\n");
    for (i, r) in protocol.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"pipeline\": {}, \"queries\": {}, \
             \"seconds\": {:.6}, \"queries_per_sec\": {:.1}, \"durable\": {}}}{}\n",
            r.mode,
            r.pipeline,
            r.queries,
            r.seconds,
            r.queries_per_sec,
            r.durable,
            if i + 1 < protocol.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let updates = if smoke {
        200_000
    } else {
        parse_flag("--updates", 4_000_000)
    };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|p| args.get(p + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let (k, reps, writer_counts): (usize, usize, Vec<usize>) = if smoke {
        (4_096, 1, vec![1])
    } else {
        (SERVE_K, SERVE_REPS, vec![1, 2])
    };

    eprintln!("generating synthetic CAIDA stream: {updates} updates ...");
    let config = CaidaConfig::scaled(updates);
    let stream: Vec<(u64, u64)> = SyntheticCaida::new(&config).collect();

    println!("# Serving-layer ingest: channels, snapshots, query load");
    print_header(&[
        "mode",
        "writers",
        "k",
        "seconds",
        "updates_per_sec",
        "queries_per_sec",
        "snapshots",
    ]);
    let mut results: Vec<ServeResult> = Vec::new();
    for &writers in &writer_counts {
        for mode in [
            "sharded_direct",
            "serve_ingest",
            "serve_publish",
            "serve_query",
        ] {
            let r = run_mode_median(mode, writers, k, &stream, reps);
            println!(
                "{}\t{}\t{}\t{:.3}\t{:.3e}\t{:.3e}\t{}",
                r.mode,
                r.writers,
                r.k,
                r.seconds,
                r.updates_per_sec,
                r.queries_per_sec,
                r.snapshots
            );
            results.push(r);
        }
    }

    println!("# Wire-protocol throughput: pipelined EST over loopback TCP");
    print_header(&["mode", "pipeline", "queries", "seconds", "queries_per_sec"]);
    let proto_queries: u64 = if smoke { 50_000 } else { 2_000_000 };
    let proto_stream: &[(u64, u64)] = if smoke {
        &stream
    } else {
        // Protocol rows measure the wire, not ingest: a short stream
        // keeps server startup out of the benchmark's wall clock.
        &stream[..stream.len().min(500_000)]
    };
    let mut protocol: Vec<ProtocolRow> = Vec::new();
    for (mode, binary) in [("proto_text", false), ("proto_binary", true)] {
        let row = run_protocol(mode, binary, proto_stream, proto_queries, smoke);
        println!(
            "{}\t{}\t{}\t{:.3}\t{:.3e}",
            row.mode, row.pipeline, row.queries, row.seconds, row.queries_per_sec
        );
        protocol.push(row);
    }

    let json = results_to_json(updates, &results, &protocol);
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
