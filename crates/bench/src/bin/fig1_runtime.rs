//! Figure 1 — runtime comparison of SMED, SMIN, RBMC, MHE on the packet
//! trace, in both the equal-counters and equal-space regimes.
//!
//! Paper shapes to reproduce (§4.3): SMED 5.5–8.7× faster than MHE,
//! 6.5–30× faster than SMIN, 20–70× faster than RBMC; gaps shrink as k
//! grows.
//!
//! The trailing panels go beyond the paper: they compare the ingestion
//! layers (scalar updates, the prefetching batch path, the sharded
//! multi-thread bank, and the generic-engine `ItemsSketch<u64>` path —
//! the abstraction-overhead column for the unified core) on Zipf and
//! adversarial workloads, and record the numbers in `BENCH_fig1.json` so
//! future changes can be checked for throughput regressions.
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin fig1_runtime \
//!     [--quick|--full|--updates N] [--json PATH] [--pipeline-only]
//!     [--smoke] [--profile]
//! ```
//!
//! `--smoke` shrinks the panel to one small counter budget with a single
//! repetition — a seconds-long CI guard that the bench binaries still
//! build and run end to end.
//!
//! `--profile` runs only the batch-mode Zipf ingest with the engine's
//! per-phase timers enabled and prints where the seconds go (aggregation
//! / probe / purge / grow), so a throughput regression localizes without
//! an external profiler.

#![forbid(unsafe_code)]

use std::collections::HashMap;

use streamfreq_baselines::SpaceSavingHeap;
use streamfreq_bench::{
    ingest_results_to_json, parse_scale_args, print_header, run_algo, run_ingest_median, Algo,
    IngestMode, IngestResult, PAPER_K_VALUES,
};
use streamfreq_workloads::{heavy_light_interleave, materialize_zipf, CaidaConfig, SyntheticCaida};

/// Counter budgets for the ingestion-pipeline panel: the paper's largest
/// configuration (table ≈ 576 KiB, already beyond L2) and a
/// production-scale configuration whose table (≈ 72 MiB) lives in DRAM —
/// the regime the prefetching batch path targets.
const PIPELINE_KS: [usize; 2] = [24_576, 2_097_152];

/// Median-of-N repetitions per measurement (VM timing noise easily
/// exceeds 10%; the median of three is stable enough to trend).
const PIPELINE_REPS: usize = 3;

/// Runs the scalar/batch/sharded/generic comparison over one workload
/// and appends rows + records. Sharded modes get `k / shards` counters
/// per shard, so every mode manages the same total counter state; hash
/// partitioning also splits the distinct items about evenly, so the
/// per-shard error level matches the unsharded sketch's. The `items_u64`
/// mode runs the identical batch workload through `ItemsSketch<u64>` —
/// the generic engine's abstraction-overhead column vs `FreqSketch`.
fn pipeline_panel(
    workload: &str,
    stream: &[(u64, u64)],
    ks: &[usize],
    reps: usize,
    results: &mut Vec<IngestResult>,
) {
    for &k in ks {
        let modes = [
            IngestMode::Scalar,
            IngestMode::Batch,
            IngestMode::Generic,
            IngestMode::Sharded {
                shards: 8,
                threads: 1,
            },
            IngestMode::Sharded {
                shards: 8,
                threads: 2,
            },
            IngestMode::Sharded {
                shards: 8,
                threads: 4,
            },
            IngestMode::Sharded {
                shards: 8,
                threads: 8,
            },
        ];
        let mut scalar_rate = 0.0f64;
        for mode in modes {
            let k_per_sketch = match mode {
                IngestMode::Sharded { shards, .. } => k / shards,
                _ => k,
            };
            let r = run_ingest_median(mode, k_per_sketch, stream, workload, reps);
            if mode == IngestMode::Scalar {
                scalar_rate = r.updates_per_sec;
            }
            println!(
                "{workload}\t{k}\t{}\t{}\t{:.3}\t{:.3e}\t{:.2}x",
                r.mode,
                r.threads,
                r.seconds,
                r.updates_per_sec,
                r.updates_per_sec / scalar_rate
            );
            results.push(r);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let updates = if smoke { 200_000 } else { parse_scale_args() };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|p| args.get(p + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fig1.json".to_string());
    let pipeline_only = args.iter().any(|a| a == "--pipeline-only") || smoke;
    let (ks, reps): (Vec<usize>, usize) = if smoke {
        (vec![4_096], 1)
    } else {
        (PIPELINE_KS.to_vec(), PIPELINE_REPS)
    };

    if args.iter().any(|a| a == "--profile") {
        profile_breakdown(updates, &ks);
        return;
    }

    if !pipeline_only {
        figure1_panels(updates);
    }

    // Ingestion pipeline: scalar vs batch vs sharded vs generic engine,
    // Zipf + adversarial.
    println!();
    println!("# Ingestion pipeline: scalar vs batch vs sharded vs items_u64");
    print_header(&[
        "workload",
        "k_total",
        "mode",
        "threads",
        "seconds",
        "updates_per_sec",
        "vs_scalar",
    ]);
    let mut results: Vec<IngestResult> = Vec::new();

    // Zipf(0.8) over a 2^27 universe: heavy enough that real heavy
    // hitters exist, light enough that the cold tail dominates table
    // traffic — the regime line-rate telemetry actually sees.
    eprintln!("generating Zipf(0.8) stream: {updates} updates ...");
    let zipf = materialize_zipf(updates, 1 << 27, 0.8, 1_500, 42);
    pipeline_panel("zipf", &zipf, &ks, reps, &mut results);
    drop(zipf);

    // Adversarial: a permanently-full table probed by fresh unit items —
    // the purge-heavy worst case for the capacity discipline.
    eprintln!("generating adversarial interleave stream ...");
    // Sized to the smallest benched k so its table is permanently full
    // (ks[0] == PIPELINE_KS[0] in the full run, the smoke k otherwise).
    let adversarial = heavy_light_interleave(ks[0], updates / 2, 1_000_000);
    pipeline_panel("adversarial", &adversarial, &ks, reps, &mut results);
    drop(adversarial);

    let json = ingest_results_to_json(updates, &results);
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }

    if smoke {
        smoke_tripwire(&results);
    }
}

/// `--smoke` CI tripwire over the pipeline panel: the unsharded modes
/// must agree on every answer (the batch kernel and the generic engine
/// are pinned state-identical to the scalar path, so a checksum drift
/// is a correctness bug, not noise), and the batch path must not be
/// catastrophically slower than scalar. The rate bound is deliberately
/// loose (0.5×) because shared CI runners easily show 2× timing noise
/// at smoke scale — it exists to catch an accidental O(n²) or a
/// disabled kernel, not to benchmark.
fn smoke_tripwire(results: &[IngestResult]) {
    let mut workloads: Vec<&str> = results.iter().map(|r| r.workload.as_str()).collect();
    workloads.dedup();
    for workload in workloads {
        let row = |mode: &str| {
            results
                .iter()
                .find(|r| r.workload == workload && r.mode == mode)
                .unwrap_or_else(|| panic!("missing {workload}/{mode} row"))
        };
        let scalar = row("scalar");
        for mode in ["batch", "items_u64"] {
            let r = row(mode);
            assert_eq!(
                r.checksum, scalar.checksum,
                "{workload}: {mode} checksum diverged from scalar"
            );
        }
        let batch = row("batch");
        assert!(
            batch.updates_per_sec >= 0.5 * scalar.updates_per_sec,
            "{workload}: batch path catastrophically slow \
             ({:.3e}/s vs scalar {:.3e}/s)",
            batch.updates_per_sec,
            scalar.updates_per_sec
        );
    }
    eprintln!("smoke tripwire passed: checksums identical, batch rate sane");
}

/// `--profile`: batch-mode Zipf ingest with the engine's per-phase
/// timers on. The phase columns sum to slightly less than `total_s`
/// (chunking, bookkeeping, and timer overhead land in `other_s`).
fn profile_breakdown(updates: usize, ks: &[usize]) {
    use streamfreq_core::FreqSketch;
    println!("# Ingest profile: batch mode, Zipf(0.8), per-phase seconds");
    print_header(&[
        "k",
        "total_s",
        "aggregate_s",
        "probe_s",
        "purge_s",
        "grow_s",
        "other_s",
        "updates_per_sec",
    ]);
    eprintln!("generating Zipf(0.8) stream: {updates} updates ...");
    let zipf = materialize_zipf(updates, 1 << 27, 0.8, 1_500, 42);
    for &k in ks {
        let mut s = FreqSketch::builder(k)
            .grow_from_small(false)
            .build()
            .expect("invalid k");
        s.engine_mut().enable_ingest_profile();
        // Warm up on a prefix so every scratch buffer (batch staging,
        // aggregation, dedup cache, purge sampler, compaction) reaches
        // its steady-state capacity, then require the rest of the run
        // to allocate nothing: steady-state ingest is O(1)-alloc. The
        // purge-path buffers only exist once the table first fills, so
        // the warmup must cover at least a couple of purges (or half
        // the stream, if k is large enough that purges never come).
        let mut warmup = 0usize;
        while warmup < zipf.len() / 2 && (s.num_purges() < 2 || warmup < 200_000) {
            let take = (zipf.len() / 2 - warmup).min(100_000);
            s.update_batch(&zipf[warmup..warmup + take]);
            warmup += take;
        }
        let caps_after_warmup = s.engine().ingest_scratch_capacities();
        s.engine_mut().take_ingest_profile(); // drop warmup phases
        let start = std::time::Instant::now();
        s.update_batch(&zipf[warmup..]);
        let total = start.elapsed().as_secs_f64();
        // The per-batch buffers (staging, aggregation, hashes, dedup
        // cache, purge sampler) must be exactly stable — the hot path
        // allocates nothing after warmup. The purge compaction gap
        // buffer is amortized instead: it doubles geometrically toward
        // the worst gap count actually seen, so it may still take a
        // final doubling after warmup, but can never pass table length.
        let caps = s.engine().ingest_scratch_capacities();
        assert_eq!(
            caps[..5],
            caps_after_warmup[..5],
            "steady-state ingest reallocated per-batch scratch (k = {k})"
        );
        assert!(
            caps[5] <= s.num_counters().next_power_of_two() * 2,
            "compaction scratch outgrew the table (k = {k}, cap {})",
            caps[5]
        );
        let p = s
            .engine_mut()
            .take_ingest_profile()
            .expect("profiling enabled above");
        let (agg, probe, purge, grow) = (
            p.aggregate.as_secs_f64(),
            p.probe.as_secs_f64(),
            p.purge.as_secs_f64(),
            p.grow.as_secs_f64(),
        );
        println!(
            "{k}\t{total:.3}\t{agg:.3}\t{probe:.3}\t{purge:.3}\t{grow:.3}\t{:.3}\t{:.3e}",
            (total - agg - probe - purge - grow).max(0.0),
            (zipf.len() - warmup) as f64 / total
        );
    }
}

/// The original Figure 1 panels: SMED/SMIN/RBMC/MHE on the packet trace.
fn figure1_panels(updates: usize) {
    let config = CaidaConfig::scaled(updates);
    eprintln!(
        "generating synthetic CAIDA-like trace: {} updates, {} flows ...",
        config.num_updates, config.num_flows
    );
    let stream = SyntheticCaida::materialize(&config);
    let n: u64 = stream.iter().map(|&(_, w)| w).sum();
    eprintln!("weighted length N = {n}");

    // One timed run per (algo, k); reused by every panel below.
    let algos = [Algo::Smed, Algo::Smin, Algo::Rbmc, Algo::Mhe];
    let mut secs: HashMap<(String, usize), f64> = HashMap::new();

    println!("# Figure 1a: equal number of counters k");
    print_header(&["k", "algo", "seconds", "updates_per_sec", "memory_bytes"]);
    for &k in &PAPER_K_VALUES {
        for algo in algos {
            let r = run_algo(algo, k, &stream, None);
            secs.insert((r.algo.clone(), k), r.elapsed.as_secs_f64());
            println!(
                "{k}\t{}\t{:.3}\t{:.3e}\t{}",
                r.algo,
                r.elapsed.as_secs_f64(),
                r.updates_per_sec,
                r.memory_bytes
            );
        }
    }

    println!();
    println!("# Figure 1b: equal space (MHE gets fewer counters for the same bytes)");
    print_header(&["budget_bytes", "algo", "k", "seconds", "updates_per_sec"]);
    for &k in &PAPER_K_VALUES {
        let budget = 24 * k; // bytes used by the table-based algorithms
        for algo in [Algo::Smed, Algo::Smin, Algo::Rbmc] {
            let t = secs[&(algo.name(), k)];
            println!(
                "{budget}\t{}\t{k}\t{t:.3}\t{:.3e}",
                algo.name(),
                stream.len() as f64 / t
            );
        }
        let k_mhe = SpaceSavingHeap::counters_for_bytes(budget);
        let r = run_algo(Algo::Mhe, k_mhe, &stream, None);
        println!(
            "{budget}\t{}\t{k_mhe}\t{:.3}\t{:.3e}",
            r.algo,
            r.elapsed.as_secs_f64(),
            r.updates_per_sec
        );
    }

    println!();
    println!("# Speedup summary (equal counters)");
    print_header(&["k", "SMED_vs_MHE", "SMED_vs_SMIN", "SMED_vs_RBMC"]);
    for &k in &PAPER_K_VALUES {
        let smed = secs[&("SMED".to_string(), k)];
        println!(
            "{k}\t{:.1}x\t{:.1}x\t{:.1}x",
            secs[&("MHE".to_string(), k)] / smed,
            secs[&("SMIN".to_string(), k)] / smed,
            secs[&("RBMC".to_string(), k)] / smed,
        );
    }
}
