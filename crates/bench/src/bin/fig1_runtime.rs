//! Figure 1 — runtime comparison of SMED, SMIN, RBMC, MHE on the packet
//! trace, in both the equal-counters and equal-space regimes.
//!
//! Paper shapes to reproduce (§4.3): SMED 5.5–8.7× faster than MHE,
//! 6.5–30× faster than SMIN, 20–70× faster than RBMC; gaps shrink as k
//! grows.
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin fig1_runtime [--quick|--full|--updates N]
//! ```

use std::collections::HashMap;

use streamfreq_baselines::SpaceSavingHeap;
use streamfreq_bench::{parse_scale_args, print_header, run_algo, Algo, PAPER_K_VALUES};
use streamfreq_workloads::{CaidaConfig, SyntheticCaida};

fn main() {
    let updates = parse_scale_args();
    let config = CaidaConfig::scaled(updates);
    eprintln!(
        "generating synthetic CAIDA-like trace: {} updates, {} flows ...",
        config.num_updates, config.num_flows
    );
    let stream = SyntheticCaida::materialize(&config);
    let n: u64 = stream.iter().map(|&(_, w)| w).sum();
    eprintln!("weighted length N = {n}");

    // One timed run per (algo, k); reused by every panel below.
    let algos = [Algo::Smed, Algo::Smin, Algo::Rbmc, Algo::Mhe];
    let mut secs: HashMap<(String, usize), f64> = HashMap::new();

    println!("# Figure 1a: equal number of counters k");
    print_header(&["k", "algo", "seconds", "updates_per_sec", "memory_bytes"]);
    for &k in &PAPER_K_VALUES {
        for algo in algos {
            let r = run_algo(algo, k, &stream, None);
            secs.insert((r.algo.clone(), k), r.elapsed.as_secs_f64());
            println!(
                "{k}\t{}\t{:.3}\t{:.3e}\t{}",
                r.algo,
                r.elapsed.as_secs_f64(),
                r.updates_per_sec,
                r.memory_bytes
            );
        }
    }

    println!();
    println!("# Figure 1b: equal space (MHE gets fewer counters for the same bytes)");
    print_header(&["budget_bytes", "algo", "k", "seconds", "updates_per_sec"]);
    for &k in &PAPER_K_VALUES {
        let budget = 24 * k; // bytes used by the table-based algorithms
        for algo in [Algo::Smed, Algo::Smin, Algo::Rbmc] {
            let t = secs[&(algo.name(), k)];
            println!(
                "{budget}\t{}\t{k}\t{t:.3}\t{:.3e}",
                algo.name(),
                stream.len() as f64 / t
            );
        }
        let k_mhe = SpaceSavingHeap::counters_for_bytes(budget);
        let r = run_algo(Algo::Mhe, k_mhe, &stream, None);
        println!(
            "{budget}\t{}\t{k_mhe}\t{:.3}\t{:.3e}",
            r.algo,
            r.elapsed.as_secs_f64(),
            r.updates_per_sec
        );
    }

    println!();
    println!("# Speedup summary (equal counters)");
    print_header(&["k", "SMED_vs_MHE", "SMED_vs_SMIN", "SMED_vs_RBMC"]);
    for &k in &PAPER_K_VALUES {
        let smed = secs[&("SMED".to_string(), k)];
        println!(
            "{k}\t{:.1}x\t{:.1}x\t{:.1}x",
            secs[&("MHE".to_string(), k)] / smed,
            secs[&("SMIN".to_string(), k)] / smed,
            secs[&("RBMC".to_string(), k)] / smed,
        );
    }
}
