//! Figure 1 — runtime comparison of SMED, SMIN, RBMC, MHE on the packet
//! trace, in both the equal-counters and equal-space regimes.
//!
//! Paper shapes to reproduce (§4.3): SMED 5.5–8.7× faster than MHE,
//! 6.5–30× faster than SMIN, 20–70× faster than RBMC; gaps shrink as k
//! grows.
//!
//! The trailing panels go beyond the paper: they compare the ingestion
//! layers (scalar updates, the prefetching batch path, the sharded
//! multi-thread bank, and the generic-engine `ItemsSketch<u64>` path —
//! the abstraction-overhead column for the unified core) on Zipf and
//! adversarial workloads, and record the numbers in `BENCH_fig1.json` so
//! future changes can be checked for throughput regressions.
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin fig1_runtime \
//!     [--quick|--full|--updates N] [--json PATH] [--pipeline-only]
//!     [--smoke]
//! ```
//!
//! `--smoke` shrinks the panel to one small counter budget with a single
//! repetition — a seconds-long CI guard that the bench binaries still
//! build and run end to end.

use std::collections::HashMap;

use streamfreq_baselines::SpaceSavingHeap;
use streamfreq_bench::{
    ingest_results_to_json, parse_scale_args, print_header, run_algo, run_ingest_median, Algo,
    IngestMode, IngestResult, PAPER_K_VALUES,
};
use streamfreq_workloads::{heavy_light_interleave, materialize_zipf, CaidaConfig, SyntheticCaida};

/// Counter budgets for the ingestion-pipeline panel: the paper's largest
/// configuration (table ≈ 576 KiB, already beyond L2) and a
/// production-scale configuration whose table (≈ 72 MiB) lives in DRAM —
/// the regime the prefetching batch path targets.
const PIPELINE_KS: [usize; 2] = [24_576, 2_097_152];

/// Median-of-N repetitions per measurement (VM timing noise easily
/// exceeds 10%; the median of three is stable enough to trend).
const PIPELINE_REPS: usize = 3;

/// Runs the scalar/batch/sharded/generic comparison over one workload
/// and appends rows + records. Sharded modes get `k / shards` counters
/// per shard, so every mode manages the same total counter state; hash
/// partitioning also splits the distinct items about evenly, so the
/// per-shard error level matches the unsharded sketch's. The `items_u64`
/// mode runs the identical batch workload through `ItemsSketch<u64>` —
/// the generic engine's abstraction-overhead column vs `FreqSketch`.
fn pipeline_panel(
    workload: &str,
    stream: &[(u64, u64)],
    ks: &[usize],
    reps: usize,
    results: &mut Vec<IngestResult>,
) {
    for &k in ks {
        let modes = [
            IngestMode::Scalar,
            IngestMode::Batch,
            IngestMode::Generic,
            IngestMode::Sharded {
                shards: 8,
                threads: 1,
            },
            IngestMode::Sharded {
                shards: 8,
                threads: 2,
            },
            IngestMode::Sharded {
                shards: 8,
                threads: 4,
            },
            IngestMode::Sharded {
                shards: 8,
                threads: 8,
            },
        ];
        let mut scalar_rate = 0.0f64;
        for mode in modes {
            let k_per_sketch = match mode {
                IngestMode::Sharded { shards, .. } => k / shards,
                _ => k,
            };
            let r = run_ingest_median(mode, k_per_sketch, stream, workload, reps);
            if mode == IngestMode::Scalar {
                scalar_rate = r.updates_per_sec;
            }
            println!(
                "{workload}\t{k}\t{}\t{}\t{:.3}\t{:.3e}\t{:.2}x",
                r.mode,
                r.threads,
                r.seconds,
                r.updates_per_sec,
                r.updates_per_sec / scalar_rate
            );
            results.push(r);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let updates = if smoke { 200_000 } else { parse_scale_args() };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|p| args.get(p + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fig1.json".to_string());
    let pipeline_only = args.iter().any(|a| a == "--pipeline-only") || smoke;
    let (ks, reps): (Vec<usize>, usize) = if smoke {
        (vec![4_096], 1)
    } else {
        (PIPELINE_KS.to_vec(), PIPELINE_REPS)
    };

    if !pipeline_only {
        figure1_panels(updates);
    }

    // Ingestion pipeline: scalar vs batch vs sharded vs generic engine,
    // Zipf + adversarial.
    println!();
    println!("# Ingestion pipeline: scalar vs batch vs sharded vs items_u64");
    print_header(&[
        "workload",
        "k_total",
        "mode",
        "threads",
        "seconds",
        "updates_per_sec",
        "vs_scalar",
    ]);
    let mut results: Vec<IngestResult> = Vec::new();

    // Zipf(0.8) over a 2^27 universe: heavy enough that real heavy
    // hitters exist, light enough that the cold tail dominates table
    // traffic — the regime line-rate telemetry actually sees.
    eprintln!("generating Zipf(0.8) stream: {updates} updates ...");
    let zipf = materialize_zipf(updates, 1 << 27, 0.8, 1_500, 42);
    pipeline_panel("zipf", &zipf, &ks, reps, &mut results);
    drop(zipf);

    // Adversarial: a permanently-full table probed by fresh unit items —
    // the purge-heavy worst case for the capacity discipline.
    eprintln!("generating adversarial interleave stream ...");
    // Sized to the smallest benched k so its table is permanently full
    // (ks[0] == PIPELINE_KS[0] in the full run, the smoke k otherwise).
    let adversarial = heavy_light_interleave(ks[0], updates / 2, 1_000_000);
    pipeline_panel("adversarial", &adversarial, &ks, reps, &mut results);
    drop(adversarial);

    let json = ingest_results_to_json(updates, &results);
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}

/// The original Figure 1 panels: SMED/SMIN/RBMC/MHE on the packet trace.
fn figure1_panels(updates: usize) {
    let config = CaidaConfig::scaled(updates);
    eprintln!(
        "generating synthetic CAIDA-like trace: {} updates, {} flows ...",
        config.num_updates, config.num_flows
    );
    let stream = SyntheticCaida::materialize(&config);
    let n: u64 = stream.iter().map(|&(_, w)| w).sum();
    eprintln!("weighted length N = {n}");

    // One timed run per (algo, k); reused by every panel below.
    let algos = [Algo::Smed, Algo::Smin, Algo::Rbmc, Algo::Mhe];
    let mut secs: HashMap<(String, usize), f64> = HashMap::new();

    println!("# Figure 1a: equal number of counters k");
    print_header(&["k", "algo", "seconds", "updates_per_sec", "memory_bytes"]);
    for &k in &PAPER_K_VALUES {
        for algo in algos {
            let r = run_algo(algo, k, &stream, None);
            secs.insert((r.algo.clone(), k), r.elapsed.as_secs_f64());
            println!(
                "{k}\t{}\t{:.3}\t{:.3e}\t{}",
                r.algo,
                r.elapsed.as_secs_f64(),
                r.updates_per_sec,
                r.memory_bytes
            );
        }
    }

    println!();
    println!("# Figure 1b: equal space (MHE gets fewer counters for the same bytes)");
    print_header(&["budget_bytes", "algo", "k", "seconds", "updates_per_sec"]);
    for &k in &PAPER_K_VALUES {
        let budget = 24 * k; // bytes used by the table-based algorithms
        for algo in [Algo::Smed, Algo::Smin, Algo::Rbmc] {
            let t = secs[&(algo.name(), k)];
            println!(
                "{budget}\t{}\t{k}\t{t:.3}\t{:.3e}",
                algo.name(),
                stream.len() as f64 / t
            );
        }
        let k_mhe = SpaceSavingHeap::counters_for_bytes(budget);
        let r = run_algo(Algo::Mhe, k_mhe, &stream, None);
        println!(
            "{budget}\t{}\t{k_mhe}\t{:.3}\t{:.3e}",
            r.algo,
            r.elapsed.as_secs_f64(),
            r.updates_per_sec
        );
    }

    println!();
    println!("# Speedup summary (equal counters)");
    print_header(&["k", "SMED_vs_MHE", "SMED_vs_SMIN", "SMED_vs_RBMC"]);
    for &k in &PAPER_K_VALUES {
        let smed = secs[&("SMED".to_string(), k)];
        println!(
            "{k}\t{:.1}x\t{:.1}x\t{:.1}x",
            secs[&("MHE".to_string(), k)] / smed,
            secs[&("SMIN".to_string(), k)] / smed,
            secs[&("RBMC".to_string(), k)] / smed,
        );
    }
}
