//! §1.3's premise — "counter-based algorithms perform significantly better
//! in terms of space, speed, and accuracy than quantile and sketching
//! algorithms" (Cormode & Hadjieleftheriou, confirmed by the paper's
//! initial experiments) — re-verified against our Count-Min and
//! CountSketch implementations at equal memory.
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin sketch_vs_counters [--quick|--full|--updates N]
//! ```

#![forbid(unsafe_code)]

use std::time::Instant;

use streamfreq_baselines::{CountMinSketch, CountSketch};
use streamfreq_bench::{exact_of, parse_scale_args, print_header, run_algo, Algo};
use streamfreq_core::FrequencyEstimator;
use streamfreq_workloads::{CaidaConfig, SyntheticCaida};

fn main() {
    let updates = parse_scale_args();
    let config = CaidaConfig::scaled(updates);
    eprintln!("generating trace ({} updates) ...", config.num_updates);
    let stream = SyntheticCaida::materialize(&config);
    let truth = exact_of(&stream);
    let n = truth.stream_weight();

    let k = 6_144usize;
    let budget = 24 * k; // bytes of the counter-based sketch
    println!("# Equal-memory comparison at {budget} bytes (k = {k} counters)");
    print_header(&[
        "algo",
        "memory_bytes",
        "seconds",
        "updates_per_sec",
        "max_error",
        "error_over_N",
    ]);

    // Counter-based representative: SMED.
    let r = run_algo(Algo::Smed, k, &stream, Some(&truth));
    println!(
        "SMED\t{}\t{:.3}\t{:.3e}\t{}\t{:.3e}",
        r.memory_bytes,
        r.elapsed.as_secs_f64(),
        r.updates_per_sec,
        r.max_error.unwrap(),
        r.max_error.unwrap() as f64 / n as f64
    );

    // Count-Min at the same byte budget: depth 4 → width = budget / (4·8).
    let depth = 4;
    let width = budget / (depth * 8);
    let mut cm = CountMinSketch::new(depth, width, 1);
    let start = Instant::now();
    for &(item, w) in &stream {
        cm.update(item, w);
    }
    let t = start.elapsed();
    let cm_err = truth.max_abs_error(|i| cm.estimate(i));
    println!(
        "CountMin\t{}\t{:.3}\t{:.3e}\t{cm_err}\t{:.3e}",
        cm.memory_bytes(),
        t.as_secs_f64(),
        stream.len() as f64 / t.as_secs_f64(),
        cm_err as f64 / n as f64
    );

    // CountSketch at the same budget.
    let mut cs = CountSketch::new(depth, width, 2);
    let start = Instant::now();
    for &(item, w) in &stream {
        cs.update(item, w);
    }
    let t = start.elapsed();
    let cs_err = truth.max_abs_error(|i| cs.estimate(i));
    println!(
        "CountSketch\t{}\t{:.3}\t{:.3e}\t{cs_err}\t{:.3e}",
        cs.memory_bytes(),
        t.as_secs_f64(),
        stream.len() as f64 / t.as_secs_f64(),
        cs_err as f64 / n as f64
    );

    println!();
    println!("# expected shape: SMED at or above the sketches' speed with far lower max error");
}
