//! §2.2 ablation — why Algorithm 4 (sampled median) replaced Algorithm 3
//! (exact k\*-th largest): the exact policy needs an extra O(k) snapshot
//! and selection on every purge, which §2.2 calls "the time bottleneck in
//! practice", plus k words of scratch. This harness quantifies both
//! sides: time per update and accuracy, MED vs SMED vs sample sizes.
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin ablation_purge [--quick|--full|--updates N]
//! ```

#![forbid(unsafe_code)]

use streamfreq_bench::{exact_of, parse_scale_args, print_header, run_algo, Algo};
use streamfreq_core::{FrequencyEstimator, PurgePolicy};
use streamfreq_workloads::{CaidaConfig, SyntheticCaida};

fn main() {
    let updates = parse_scale_args();
    let config = CaidaConfig::scaled(updates);
    eprintln!(
        "generating synthetic CAIDA-like trace: {} updates ...",
        config.num_updates
    );
    let stream = SyntheticCaida::materialize(&config);
    let truth = exact_of(&stream);
    let n = truth.stream_weight();

    println!("# Exact selection (MED, Algorithm 3) vs sampled median (SMED, Algorithm 4)");
    print_header(&[
        "k",
        "policy",
        "seconds",
        "updates_per_sec",
        "max_error",
        "error_over_N",
    ]);
    for k in [1_536usize, 6_144, 24_576] {
        for algo in [Algo::Med, Algo::Smed] {
            let r = run_algo(algo, k, &stream, Some(&truth));
            let err = r.max_error.expect("truth supplied");
            println!(
                "{k}\t{}\t{:.3}\t{:.3e}\t{err}\t{:.3e}",
                r.algo,
                r.elapsed.as_secs_f64(),
                r.updates_per_sec,
                err as f64 / n as f64
            );
        }
    }

    println!();
    println!("# Sample-size sweep at the median quantile (k = 6144): how small can ℓ go?");
    print_header(&["sample_size", "seconds", "max_error", "error_over_N"]);
    for sample_size in [16usize, 64, 256, 1024, 4096] {
        let mut sketch = streamfreq_core::FreqSketch::builder(6_144)
            .policy(PurgePolicy::SampleQuantile {
                sample_size,
                quantile: 0.5,
            })
            .grow_from_small(false)
            .build()
            .expect("valid config");
        let start = std::time::Instant::now();
        for &(item, w) in &stream {
            sketch.update(item, w);
        }
        let secs = start.elapsed().as_secs_f64();
        let err = truth.max_abs_error(|i| sketch.estimate(i));
        println!(
            "{sample_size}\t{secs:.3}\t{err}\t{:.3e}",
            err as f64 / n as f64
        );
    }
    println!();
    println!("# expected shape: SMED ≈ MED accuracy at a fraction of MED's time;");
    println!("# error stable down to small ℓ (the paper fixes ℓ = 1024 for the");
    println!("# 1 - 1.5e-8 certified tail bound, not for empirical accuracy)");
}
