//! Space accounting — verifies §2.3.3's `24k`-byte formula and §4.1's
//! claim that at `k = 24 576` the sketch uses < 1/70 of the trivial exact
//! solution's space.
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin space_table [--quick|--full|--updates N]
//! ```

#![forbid(unsafe_code)]

use streamfreq_baselines::{ExactCounter, Rbmc, SpaceSavingHeap, StreamSummary};
use streamfreq_bench::{fmt_bytes, parse_scale_args, print_header, PAPER_K_VALUES};
use streamfreq_core::{FreqSketch, FrequencyEstimator};
use streamfreq_workloads::{CaidaConfig, SyntheticCaida};

fn main() {
    println!("# Sketch memory by k (paper: 24k bytes for the table-based algorithms)");
    print_header(&[
        "k",
        "sketch_bytes",
        "bytes_per_counter",
        "mhe_bytes",
        "ssl_bytes_est",
    ]);
    for &k in &PAPER_K_VALUES {
        let sketch = FreqSketch::builder(k)
            .grow_from_small(false)
            .build()
            .expect("invalid k");
        let rbmc = Rbmc::new(k);
        assert_eq!(sketch.memory_bytes(), rbmc.memory_bytes());
        let mhe = SpaceSavingHeap::new(k);
        let mut ssl = StreamSummary::new(k);
        for i in 0..k as u64 {
            ssl.update_one(i); // force full allocation
        }
        println!(
            "{k}\t{}\t{:.1}\t{}\t{}",
            sketch.memory_bytes(),
            sketch.memory_bytes() as f64 / k as f64,
            mhe.memory_bytes(),
            ssl.memory_bytes()
        );
    }

    let updates = parse_scale_args();
    let config = CaidaConfig::scaled(updates);
    eprintln!(
        "generating trace ({} updates) for the trivial-solution comparison ...",
        config.num_updates
    );
    let mut exact = ExactCounter::new();
    for (item, w) in SyntheticCaida::new(&config) {
        exact.update(item, w);
    }
    println!();
    println!("# Trivial exact solution vs sketch (k = 24576)");
    let sketch_bytes = FreqSketch::builder(24_576)
        .grow_from_small(false)
        .build()
        .expect("k")
        .memory_bytes();
    println!(
        "exact: {} distinct items, {}",
        exact.num_distinct(),
        fmt_bytes(exact.memory_bytes())
    );
    println!("sketch: {}", fmt_bytes(sketch_bytes));
    println!(
        "ratio: {:.1}x (paper at full scale: >70x)",
        exact.memory_bytes() as f64 / sketch_bytes as f64
    );
}
