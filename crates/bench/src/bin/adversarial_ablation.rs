//! §1.3.4 ablation — the stream that makes RBMC purge on every update.
//!
//! `k` updates of weight `M` to distinct items followed by `M` unit
//! updates to fresh items: RBMC performs a Θ(k) sweep per unit update
//! while SMED's sampled-median purge fires at most once per ~k/2 updates.
//! This is the constructive argument for Theorem 3's amortized-O(1) claim.
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin adversarial_ablation [--k N] [--m N]
//! ```

#![forbid(unsafe_code)]

use std::time::Instant;

use streamfreq_baselines::Rbmc;
use streamfreq_bench::{parse_flag, print_header};
use streamfreq_core::{FreqSketch, FrequencyEstimator, PurgePolicy};
use streamfreq_workloads::{rbmc_killer, AdversarialConfig};

fn main() {
    let k = parse_flag("--k", 4_096);
    let m = parse_flag("--m", 2_000_000) as u64;
    let stream = rbmc_killer(AdversarialConfig { k, m });
    println!("# Adversarial stream: k={k} heavy items of weight {m}, then {m} unit updates");
    print_header(&[
        "algo",
        "seconds",
        "updates_per_sec",
        "purges",
        "purges_per_update",
    ]);

    let mut rbmc = Rbmc::new(k);
    let start = Instant::now();
    for &(item, w) in &stream {
        rbmc.update(item, w);
    }
    let t = start.elapsed().as_secs_f64();
    println!(
        "RBMC\t{t:.3}\t{:.3e}\t{}\t{:.4}",
        stream.len() as f64 / t,
        rbmc.num_sweeps(),
        rbmc.num_sweeps() as f64 / stream.len() as f64
    );

    let mut smed = FreqSketch::builder(k)
        .policy(PurgePolicy::smed())
        .grow_from_small(false)
        .build()
        .expect("invalid k");
    let start = Instant::now();
    for &(item, w) in &stream {
        smed.update(item, w);
    }
    let t_smed = start.elapsed().as_secs_f64();
    println!(
        "SMED\t{t_smed:.3}\t{:.3e}\t{}\t{:.4}",
        stream.len() as f64 / t_smed,
        smed.num_purges(),
        smed.num_purges() as f64 / stream.len() as f64
    );

    println!();
    println!("# SMED vs RBMC speedup on this stream: {:.0}x", t / t_smed);
    println!("# expected shape: RBMC ~1 purge/update; SMED ≲ 2/k purges/update");
}
