//! Durability cost and recovery speed, recorded into
//! `BENCH_persist.json`.
//!
//! Two questions the persistence subsystem must answer with numbers:
//!
//! 1. **What does the WAL cost on the ingest path?** Every batch is
//!    encoded as a compact delta/varint frame into a reused scratch
//!    buffer and staged on the group-commit writer thread before it is
//!    applied, so the foreground overhead is encode + stage; writes and
//!    fsyncs coalesce off-thread per flush window. The run also asserts
//!    the encode scratch buffer stops growing after the first batch —
//!    the O(1)-allocations-per-flush contract. Each row reports the
//!    foreground rate and, separately, `drain_seconds` — the final
//!    durability barrier — so concurrent writer progress is visible
//!    without hiding an unflushed backlog. Modes, identical
//!    synthetic CAIDA stream, identical batching:
//!    * `memory_floor` — bare `SketchEngine::update_batch`: the
//!      in-memory cost floor;
//!    * `wal_off` — `DurableSketch` with `FsyncPolicy::Off` (OS flushes);
//!    * `wal_8mib` — `FsyncPolicy::EveryBytes(8 MiB)`, the default
//!      bounded-loss-window policy;
//!    * `wal_always` — `FsyncPolicy::Always`, one flush per batch: the
//!      no-acknowledged-loss ceiling.
//! 2. **How fast is recovery, as a function of the WAL tail?** Stores
//!    are written with growing un-checkpointed tails and recovered
//!    read-only (`checkpoint ⊕ replay`); replay drives the same batched
//!    ingest path, so this measures the real restart-latency curve that
//!    checkpoint frequency trades against.
//!
//! ```text
//! cargo run --release -p streamfreq-bench --bin fig_persist -- \
//!     [--updates N] [--json PATH] [--smoke]
//! ```
//!
//! `--smoke` shrinks to one small configuration with a single
//! repetition — the CI guard that the persistence binary still runs.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Instant;

use streamfreq_bench::{parse_flag, print_header};
use streamfreq_core::persist::recover::recover_engine_readonly;
use streamfreq_core::{DurabilityOptions, DurableSketch, EngineConfig, FsyncPolicy, SketchEngine};
use streamfreq_workloads::{CaidaConfig, SyntheticCaida};

/// The paper's largest counter configuration (§4.1).
const PERSIST_K: usize = 24_576;

/// Updates per logged batch: the serving layer's writer-buffer size.
const BATCH: usize = 4_096;

/// Median-of-N repetitions per ingest measurement.
const PERSIST_REPS: usize = 3;

struct IngestRow {
    mode: &'static str,
    k: usize,
    updates: usize,
    /// Foreground ingest wall clock: encode + stage + apply. This is
    /// the rate the ingest path sustains while the log-writer thread
    /// drains concurrently.
    seconds: f64,
    updates_per_sec: f64,
    /// The final durability barrier (`sync`): how much staged backlog
    /// the measurement would otherwise hide. Zero for `memory_floor`.
    drain_seconds: f64,
    wal_bytes: u64,
    checksum: u64,
}

struct RecoveryRow {
    tail_records: u64,
    tail_updates: u64,
    wal_bytes: u64,
    seconds: f64,
    updates_per_sec: f64,
}

/// A scratch store directory (fresh per call).
fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("streamfreq-fig-persist")
        .join(format!("{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn probe_items(stream: &[(u64, u64)]) -> Vec<u64> {
    stream
        .iter()
        .rev()
        .take(64)
        .map(|&(item, _)| item)
        .collect()
}

/// One ingest pass of `mode` over the stream.
fn run_ingest_mode(mode: &'static str, k: usize, stream: &[(u64, u64)]) -> IngestRow {
    let probe = probe_items(stream);
    let config = EngineConfig::new(k).grow_from_small(false);
    let fsync = match mode {
        "wal_off" => Some(FsyncPolicy::Off),
        "wal_8mib" => Some(FsyncPolicy::EveryBytes(8 << 20)),
        "wal_always" => Some(FsyncPolicy::Always),
        "memory_floor" => None,
        other => unreachable!("unknown mode {other}"),
    };
    let (seconds, drain_seconds, wal_bytes, checksum) = match fsync {
        None => {
            let mut engine: SketchEngine<u64> = config.build_engine().expect("valid config");
            let start = Instant::now();
            for chunk in stream.chunks(BATCH) {
                engine.update_batch(chunk);
            }
            let secs = start.elapsed().as_secs_f64();
            let checksum = probe.iter().map(|i| engine.lower_bound(i)).sum();
            (secs, 0.0, 0, checksum)
        }
        Some(fsync) => {
            let dir = scratch_dir(mode);
            let opts = DurabilityOptions {
                fsync,
                ..DurabilityOptions::default()
            };
            let (mut store, _) = DurableSketch::<u64>::open(&dir, config, opts)
                .expect("fresh store in a scratch directory");
            let start = Instant::now();
            let mut warm_scratch = 0usize;
            for (i, chunk) in stream.chunks(BATCH).enumerate() {
                store.update_batch(chunk).expect("WAL append");
                if i == 0 {
                    warm_scratch = store.encode_scratch_capacity();
                }
            }
            assert_eq!(
                store.encode_scratch_capacity(),
                warm_scratch,
                "wal encode must reuse its scratch buffer: O(1) allocations per flush"
            );
            let secs = start.elapsed().as_secs_f64();
            // Timed separately so the group-commit writer's concurrent
            // progress is visible rather than hidden: `seconds` is the
            // foreground cost, `drain_seconds` is whatever backlog the
            // final durability barrier still had to flush.
            let drain_start = Instant::now();
            store.sync().expect("final WAL flush");
            let drain = drain_start.elapsed().as_secs_f64();
            let wal_bytes = store.wal_bytes();
            let checksum = probe.iter().map(|i| store.engine().lower_bound(i)).sum();
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);
            (secs, drain, wal_bytes, checksum)
        }
    };
    IngestRow {
        mode,
        k,
        updates: stream.len(),
        seconds,
        updates_per_sec: stream.len() as f64 / seconds,
        drain_seconds,
        wal_bytes,
        checksum,
    }
}

/// [`run_ingest_mode`] repeated, keeping the median-throughput run.
fn run_ingest_median(
    mode: &'static str,
    k: usize,
    stream: &[(u64, u64)],
    reps: usize,
) -> IngestRow {
    assert!(reps > 0);
    let mut rows: Vec<IngestRow> = (0..reps)
        .map(|_| run_ingest_mode(mode, k, stream))
        .collect();
    rows.sort_by(|a, b| {
        a.updates_per_sec
            .partial_cmp(&b.updates_per_sec)
            .expect("throughput is never NaN")
    });
    rows.swap_remove(rows.len() / 2)
}

/// Writes an un-checkpointed store holding `prefix` of the stream, then
/// measures a read-only recovery (fresh engine + full WAL replay).
fn run_recovery(k: usize, stream: &[(u64, u64)], frac: f64) -> RecoveryRow {
    let dir = scratch_dir("recovery");
    let config = EngineConfig::new(k).grow_from_small(false);
    let prefix = &stream[..((stream.len() as f64 * frac) as usize).max(BATCH.min(stream.len()))];
    let opts = DurabilityOptions {
        fsync: FsyncPolicy::Off,
        ..DurabilityOptions::default()
    };
    let (mut store, _) =
        DurableSketch::<u64>::open(&dir, config, opts).expect("fresh recovery store");
    for chunk in prefix.chunks(BATCH) {
        store.update_batch(chunk).expect("WAL append");
    }
    let wal_bytes = store.wal_bytes();
    drop(store);
    let start = Instant::now();
    let (engine, _, report) = recover_engine_readonly::<u64>(&dir).expect("recovery");
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(report.updates_replayed as usize, prefix.len());
    assert!(engine.stream_weight() > 0);
    let _ = std::fs::remove_dir_all(&dir);
    RecoveryRow {
        tail_records: report.records_replayed,
        tail_updates: report.updates_replayed,
        wal_bytes,
        seconds,
        updates_per_sec: report.updates_replayed as f64 / seconds,
    }
}

fn results_to_json(updates: usize, ingest: &[IngestRow], recovery: &[RecoveryRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"fig_persist\",\n");
    out.push_str(&format!("  \"updates\": {updates},\n"));
    out.push_str("  \"workload\": \"synthetic_caida\",\n");
    out.push_str(&format!("  \"batch\": {BATCH},\n"));
    out.push_str("  \"ingest\": [\n");
    for (i, r) in ingest.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"k\": {}, \"updates\": {}, \"seconds\": {:.6}, \
             \"updates_per_sec\": {:.1}, \"drain_seconds\": {:.6}, \"wal_bytes\": {}, \
             \"checksum\": {}}}{}\n",
            r.mode,
            r.k,
            r.updates,
            r.seconds,
            r.updates_per_sec,
            r.drain_seconds,
            r.wal_bytes,
            r.checksum,
            if i + 1 < ingest.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"recovery\": [\n");
    for (i, r) in recovery.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"tail_records\": {}, \"tail_updates\": {}, \"wal_bytes\": {}, \
             \"seconds\": {:.6}, \"updates_per_sec\": {:.1}}}{}\n",
            r.tail_records,
            r.tail_updates,
            r.wal_bytes,
            r.seconds,
            r.updates_per_sec,
            if i + 1 < recovery.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let updates = if smoke {
        200_000
    } else {
        parse_flag("--updates", 4_000_000)
    };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|p| args.get(p + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_persist.json".to_string());
    let (k, reps) = if smoke {
        (4_096, 1)
    } else {
        (PERSIST_K, PERSIST_REPS)
    };

    eprintln!("generating synthetic CAIDA stream: {updates} updates ...");
    let config = CaidaConfig::scaled(updates);
    let stream: Vec<(u64, u64)> = SyntheticCaida::new(&config).collect();

    println!("# Durable ingest: WAL cost by fsync policy");
    print_header(&[
        "mode",
        "k",
        "seconds",
        "updates_per_sec",
        "drain_seconds",
        "wal_bytes",
    ]);
    let mut ingest = Vec::new();
    for mode in ["memory_floor", "wal_off", "wal_8mib", "wal_always"] {
        let row = run_ingest_median(mode, k, &stream, reps);
        println!(
            "{}\t{}\t{:.3}\t{:.3e}\t{:.3}\t{}",
            row.mode, row.k, row.seconds, row.updates_per_sec, row.drain_seconds, row.wal_bytes
        );
        ingest.push(row);
    }

    println!("# Recovery time vs WAL tail length");
    print_header(&["tail_updates", "wal_bytes", "seconds", "updates_per_sec"]);
    let mut recovery = Vec::new();
    for frac in [0.25, 0.5, 1.0] {
        let row = run_recovery(k, &stream, frac);
        println!(
            "{}\t{}\t{:.3}\t{:.3e}",
            row.tail_updates, row.wal_bytes, row.seconds, row.updates_per_sec
        );
        recovery.push(row);
    }

    let json = results_to_json(updates, &ingest, &recovery);
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
