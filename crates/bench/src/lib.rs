//! # streamfreq-bench
//!
//! The experiment harness that regenerates every figure of Anderson et
//! al. (IMC 2017). Each figure has a binary under `src/bin/`; Criterion
//! micro-benchmarks live under `benches/`. DESIGN.md carries the full
//! experiment index; EXPERIMENTS.md records paper-vs-measured results.
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig1_runtime` | Figure 1 — runtime of SMED/SMIN/RBMC/MHE, equal-space & equal-counters |
//! | `fig2_error` | Figure 2 — maximum error of the four algorithms |
//! | `fig3_quantile_sweep` | Figure 3 — time & error vs purge quantile |
//! | `fig4_merge` | Figure 4 — merge throughput vs ACH+13 / Hoa61 |
//! | `space_table` | §2.3.3's 24k-byte formula & §4.1's ~70× vs exact |
//! | `sketch_vs_counters` | §1.3's "counter-based beats sketches" |
//! | `adversarial_ablation` | §1.3.4's RBMC worst case vs SMED |
//! | `merge_clustering` | §3.2 Note — randomized vs sequential merge order |
//! | `fig_temporal` | temporal-layer ingest (decayed + windowed) vs plain batch, → `BENCH_temporal.json` |
//!
//! All binaries accept `--updates N` (stream length; default 10 M for the
//! trace experiments), `--quick` (1 M), and `--full` (the paper's 126.2 M)
//! and print tab-separated rows suitable for plotting.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

use std::time::{Duration, Instant};

use streamfreq_baselines::{ExactCounter, Rbmc, SpaceSavingHeap};
use streamfreq_core::{FreqSketch, FrequencyEstimator, ItemsSketch, PurgePolicy};
use streamfreq_workloads::WeightedUpdate;

/// The algorithms compared in Figures 1–3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algo {
    /// The paper's recommended sketch (sample median purge).
    Smed,
    /// Sample-minimum purge (accuracy-leaning variant).
    Smin,
    /// Sample-quantile purge at an arbitrary quantile (Figure 3 sweep).
    Quantile(f64),
    /// Algorithm 3: exact k/2-th largest purge (MED).
    Med,
    /// Berinde et al. reduce-by-min-counter.
    Rbmc,
    /// Min-heap Space Saving for weighted updates.
    Mhe,
}

impl Algo {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Algo::Smed => "SMED".into(),
            Algo::Smin => "SMIN".into(),
            Algo::Quantile(q) => format!("Q{:02.0}", q * 100.0),
            Algo::Med => "MED".into(),
            Algo::Rbmc => "RBMC".into(),
            Algo::Mhe => "MHE".into(),
        }
    }
}

/// Enum-dispatched runner so one measurement loop serves every algorithm.
enum Runner {
    Sketch(FreqSketch),
    Rbmc(Rbmc),
    Mhe(SpaceSavingHeap),
}

impl Runner {
    fn new(algo: Algo, k: usize) -> Runner {
        match algo {
            Algo::Smed => Runner::Sketch(
                FreqSketch::builder(k)
                    .policy(PurgePolicy::smed())
                    .grow_from_small(false)
                    .build()
                    .expect("invalid k"),
            ),
            Algo::Smin => Runner::Sketch(
                FreqSketch::builder(k)
                    .policy(PurgePolicy::smin())
                    .grow_from_small(false)
                    .build()
                    .expect("invalid k"),
            ),
            Algo::Quantile(q) => Runner::Sketch(
                FreqSketch::builder(k)
                    .policy(PurgePolicy::sample_quantile(q))
                    .grow_from_small(false)
                    .build()
                    .expect("invalid k"),
            ),
            Algo::Med => Runner::Sketch(
                FreqSketch::builder(k)
                    .policy(PurgePolicy::med())
                    .grow_from_small(false)
                    .build()
                    .expect("invalid k"),
            ),
            Algo::Rbmc => Runner::Rbmc(Rbmc::new(k)),
            Algo::Mhe => Runner::Mhe(SpaceSavingHeap::new(k)),
        }
    }

    fn update(&mut self, item: u64, weight: u64) {
        match self {
            Runner::Sketch(s) => s.update(item, weight),
            Runner::Rbmc(r) => r.update(item, weight),
            Runner::Mhe(m) => m.update(item, weight),
        }
    }

    fn estimate(&self, item: u64) -> u64 {
        match self {
            Runner::Sketch(s) => s.estimate(item),
            Runner::Rbmc(r) => r.estimate(item),
            Runner::Mhe(m) => m.estimate(item),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            Runner::Sketch(s) => s.memory_bytes(),
            Runner::Rbmc(r) => r.memory_bytes(),
            Runner::Mhe(m) => m.memory_bytes(),
        }
    }
}

/// Outcome of one measured run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Algorithm display name.
    pub algo: String,
    /// Counters configured.
    pub k: usize,
    /// Bytes of summary state.
    pub memory_bytes: usize,
    /// Wall time for the full update pass.
    pub elapsed: Duration,
    /// Updates per second.
    pub updates_per_sec: f64,
    /// Maximum absolute estimation error over all distinct items
    /// (only measured when ground truth is supplied).
    pub max_error: Option<u64>,
}

/// Runs `algo` with `k` counters over `stream`, timing the update pass and
/// (when `truth` is given) measuring the maximum absolute error of the
/// algorithm's estimates over every distinct item.
pub fn run_algo(
    algo: Algo,
    k: usize,
    stream: &[WeightedUpdate],
    truth: Option<&ExactCounter>,
) -> RunResult {
    let mut runner = Runner::new(algo, k);
    let start = Instant::now();
    for &(item, weight) in stream {
        runner.update(item, weight);
    }
    let elapsed = start.elapsed();
    let max_error = truth.map(|t| t.max_abs_error(|item| runner.estimate(item)));
    RunResult {
        algo: algo.name(),
        k,
        memory_bytes: runner.memory_bytes(),
        elapsed,
        updates_per_sec: stream.len() as f64 / elapsed.as_secs_f64(),
        max_error,
    }
}

/// How a [`FreqSketch`]-family summary ingests a stream — the three
/// layers of the ingestion pipeline compared by `fig1_runtime`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IngestMode {
    /// One `FreqSketch::update` call per stream element.
    Scalar,
    /// One `FreqSketch::update_batch` call over the whole slice
    /// (home precompute + software prefetch + folded bookkeeping).
    Batch,
    /// A `ShardedSketch` bank ingesting with `threads` scoped threads
    /// over `shards` hash-partitioned shards.
    Sharded {
        /// Number of hash-partitioned shards in the bank.
        shards: usize,
        /// Scoped ingestion threads (clamped to `shards`).
        threads: usize,
    },
    /// An `ItemsSketch<u64>` driving the same generic engine through the
    /// by-value item path — measures the abstraction overhead of the
    /// generic core against the `u64`-specialized `FreqSketch` wrapper
    /// (state-identical by construction; only the dispatch differs).
    Generic,
}

impl IngestMode {
    /// Display name (`scalar`, `batch`, `sharded8x4`, …).
    pub fn name(&self) -> String {
        match self {
            IngestMode::Scalar => "scalar".into(),
            IngestMode::Batch => "batch".into(),
            IngestMode::Sharded { shards, threads } => format!("sharded{shards}x{threads}"),
            IngestMode::Generic => "items_u64".into(),
        }
    }
}

/// Outcome of one ingestion-pipeline measurement.
#[derive(Clone, Debug)]
pub struct IngestResult {
    /// Mode display name.
    pub mode: String,
    /// Workload display name.
    pub workload: String,
    /// Counters per sketch (per shard in sharded modes).
    pub k: usize,
    /// Ingestion threads (1 for scalar/batch).
    pub threads: usize,
    /// Stream updates processed.
    pub updates: usize,
    /// Wall time for the ingestion pass.
    pub seconds: f64,
    /// Updates per second.
    pub updates_per_sec: f64,
    /// Checksum (Σ lower bounds over probed items) so the compiler cannot
    /// discard the work and runs can be sanity-compared.
    pub checksum: u64,
}

/// Runs one ingestion measurement of `mode` with `k` counters over
/// `stream`, labeling the result with `workload`.
pub fn run_ingest(
    mode: IngestMode,
    k: usize,
    stream: &[WeightedUpdate],
    workload: &str,
) -> IngestResult {
    use streamfreq_core::ShardedSketch;
    let probe: Vec<u64> = stream.iter().take(64).map(|&(i, _)| i).collect();
    let (seconds, checksum, threads) = match mode {
        IngestMode::Scalar => {
            let mut s = FreqSketch::builder(k)
                .grow_from_small(false)
                .build()
                .expect("invalid k");
            let start = Instant::now();
            for &(item, w) in stream {
                s.update(item, w);
            }
            let secs = start.elapsed().as_secs_f64();
            (secs, probe.iter().map(|&i| s.lower_bound(i)).sum(), 1)
        }
        IngestMode::Batch => {
            let mut s = FreqSketch::builder(k)
                .grow_from_small(false)
                .build()
                .expect("invalid k");
            let start = Instant::now();
            s.update_batch(stream);
            let secs = start.elapsed().as_secs_f64();
            (secs, probe.iter().map(|&i| s.lower_bound(i)).sum(), 1)
        }
        IngestMode::Generic => {
            let mut s: ItemsSketch<u64> = ItemsSketch::builder(k)
                .grow_from_small(false)
                .build()
                .expect("invalid k");
            let start = Instant::now();
            s.update_batch(stream);
            let secs = start.elapsed().as_secs_f64();
            (secs, probe.iter().map(|i| s.lower_bound(i)).sum(), 1)
        }
        IngestMode::Sharded { shards, threads } => {
            let mut bank = ShardedSketch::builder(shards, k)
                .grow_from_small(false)
                .build()
                .expect("invalid sharded config");
            let start = Instant::now();
            bank.ingest_parallel(stream, threads);
            let secs = start.elapsed().as_secs_f64();
            (
                secs,
                probe.iter().map(|i| bank.lower_bound(i)).sum(),
                threads,
            )
        }
    };
    IngestResult {
        mode: mode.name(),
        workload: workload.to_string(),
        k,
        threads,
        updates: stream.len(),
        seconds,
        updates_per_sec: stream.len() as f64 / seconds,
        checksum,
    }
}

/// [`run_ingest`] repeated `reps` times, keeping the median-throughput
/// run — measurement noise on small VMs easily exceeds the effects being
/// measured, and the median of three is stable enough to trend.
pub fn run_ingest_median(
    mode: IngestMode,
    k: usize,
    stream: &[WeightedUpdate],
    workload: &str,
    reps: usize,
) -> IngestResult {
    assert!(reps > 0);
    let mut runs: Vec<IngestResult> = (0..reps)
        .map(|_| run_ingest(mode, k, stream, workload))
        .collect();
    runs.sort_by(|a, b| {
        a.updates_per_sec
            .partial_cmp(&b.updates_per_sec)
            .expect("throughput is never NaN")
    });
    runs.swap_remove(runs.len() / 2)
}

/// Serializes ingestion results as a JSON trajectory file (hand-rolled —
/// the offline workspace carries no serde). Layout:
///
/// ```json
/// {
///   "bench": "fig1_ingest_pipeline",
///   "updates": 1000000,
///   "hardware_threads": 8,
///   "results": [ {"mode": "...", "workload": "...", ...}, ... ]
/// }
/// ```
pub fn ingest_results_to_json(updates: usize, results: &[IngestResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"fig1_ingest_pipeline\",\n");
    out.push_str(&format!("  \"updates\": {updates},\n"));
    out.push_str(&format!(
        "  \"hardware_threads\": {},\n",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"workload\": \"{}\", \"k\": {}, \"threads\": {}, \
             \"updates\": {}, \"seconds\": {:.6}, \"updates_per_sec\": {:.1}, \
             \"checksum\": {}}}{}\n",
            r.mode,
            r.workload,
            r.k,
            r.threads,
            r.updates,
            r.seconds,
            r.updates_per_sec,
            r.checksum,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Builds the exact ground truth for a stream.
pub fn exact_of(stream: &[WeightedUpdate]) -> ExactCounter {
    let mut e = ExactCounter::new();
    for &(item, weight) in stream {
        e.update(item, weight);
    }
    e
}

/// The five counter budgets of §4's experiments (1.5k, 3k, 6k, 12k, 24k
/// counters in units of 1024).
pub const PAPER_K_VALUES: [usize; 5] = [1_536, 3_072, 6_144, 12_288, 24_576];

/// Standard command-line scale handling for the figure binaries:
/// `--quick` = 1 M updates, `--full` = the paper's 126.2 M,
/// `--updates N` = explicit, default 10 M.
pub fn parse_scale_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--quick") {
        return 1_000_000;
    }
    if args.iter().any(|a| a == "--full") {
        return 126_200_000;
    }
    if let Some(pos) = args.iter().position(|a| a == "--updates") {
        if let Some(n) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            return n;
        }
        eprintln!("--updates requires a positive integer argument");
        std::process::exit(2);
    }
    10_000_000
}

/// Parses `--pairs N` style optional integer flags.
pub fn parse_flag(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == name) {
        if let Some(n) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            return n;
        }
        eprintln!("{name} requires a positive integer argument");
        std::process::exit(2);
    }
    default
}

/// Formats a tab-separated header + prints it.
pub fn print_header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Human-readable byte count (KiB/MiB).
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KiB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_stream() -> Vec<WeightedUpdate> {
        (0..50_000u64).map(|i| (i % 700, i % 13 + 1)).collect()
    }

    #[test]
    fn run_algo_measures_all_algorithms() {
        let stream = tiny_stream();
        let truth = exact_of(&stream);
        for algo in [Algo::Smed, Algo::Smin, Algo::Med, Algo::Rbmc, Algo::Mhe] {
            let r = run_algo(algo, 64, &stream, Some(&truth));
            assert!(
                r.updates_per_sec > 0.0,
                "{:?} reported zero throughput",
                algo
            );
            assert!(r.memory_bytes > 0);
            let err = r.max_error.expect("truth supplied");
            assert!(
                err <= truth.stream_weight(),
                "{:?} error {err} exceeds stream weight",
                algo
            );
        }
    }

    #[test]
    fn error_shrinks_with_k() {
        let stream = tiny_stream();
        let truth = exact_of(&stream);
        let small = run_algo(Algo::Smed, 32, &stream, Some(&truth))
            .max_error
            .unwrap();
        let large = run_algo(Algo::Smed, 512, &stream, Some(&truth))
            .max_error
            .unwrap();
        assert!(
            large < small,
            "error must shrink with k: {large} !< {small}"
        );
    }

    #[test]
    fn equal_space_helpers_are_consistent() {
        let bytes = 24 * 1024 * 24; // SMED with k = 24576... scaled: k=1024 → 24 KiB·24
        let k_mhe = SpaceSavingHeap::counters_for_bytes(bytes);
        let mhe = SpaceSavingHeap::new(k_mhe);
        assert!(
            mhe.memory_bytes() <= bytes + bytes / 10,
            "MHE overshoots budget"
        );
        assert!(
            k_mhe < 24 * 1024,
            "MHE must get fewer counters for equal space"
        );
    }

    #[test]
    fn fmt_bytes_is_readable() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert!(fmt_bytes(3 << 20).contains("MiB"));
    }

    #[test]
    fn quantile_algo_names() {
        assert_eq!(Algo::Quantile(0.5).name(), "Q50");
        assert_eq!(Algo::Quantile(0.98).name(), "Q98");
        assert_eq!(Algo::Smed.name(), "SMED");
    }
}
